// Flow-level discrete-event simulator.
//
// A *flow* is a bulk data transfer (one chunk read) that traverses a set of
// resources (source disk; plus source/destination NICs when remote). At any
// instant, active flows receive a max-min fair allocation of resource
// capacities; the engine advances virtual time to the earliest flow
// completion or timer, fires callbacks (which may start new flows), and
// recomputes rates. This is the standard fluid approximation of TCP-like
// bandwidth sharing, and it is what turns "8 chunks served by one node" into
// "8x slower reads" — the paper's core observation.
//
// Disk resources additionally degrade under concurrency (head thrash): with k
// active flows, effective capacity = base / (1 + beta * (k - 1)).
//
// Scalability design (see DESIGN.md "Simulator scalability"): per-event cost
// depends on the *active* flow set, never on the total number of flows ever
// started. Retired flows return their slot to a free list (FlowIds carry a
// generation tag so stale handles stay inert); completions come from a lazily
// invalidated earliest-ETA heap (entries are epoch-stamped and re-validated
// against exact remaining bytes when popped); and rate recomputation
// re-levels only the connected component of resources a joining/leaving flow
// touches, using reusable workspace buffers. Byte and busy-time accounting is
// anchor-based: progress is committed when a flow's rate changes or the flow
// ends, and read-side accessors materialize the open interval, so advancing
// time is O(1) instead of O(active flows).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace opass {
class ThreadPool;
}

namespace opass::sim {

using ResourceId = std::uint32_t;

/// Opaque flow handle: low 32 bits address a reusable flow slot, high 32 bits
/// carry the creation tag that makes handles to retired flows inert.
using FlowId = std::uint64_t;

/// Attribution time base: virtual seconds quantized to integer nanoseconds.
/// All causal-tracing arithmetic (obs/spans) happens on these ticks so
/// interval durations sum *exactly* — chained boundaries telescope in int64
/// with no floating-point drift. Deterministic because the underlying doubles
/// are byte-identical across runs and thread counts (DESIGN.md §12).
inline std::int64_t to_ticks(Seconds t) { return std::llround(t * 1e9); }

/// One binding-resource interval of a flow: over [start_ticks, end_ticks)
/// the flow's max-min rate was pinned by `resource` (the bottleneck whose
/// fair share it was frozen at), or by the flow's own rate cap when
/// `resource == kCapBinding`. Consecutive intervals chain (each close is the
/// next open), so their durations sum exactly to the flow's transfer time.
struct BindingInterval {
  std::int64_t start_ticks = 0;
  std::int64_t end_ticks = 0;
  ResourceId resource = 0;
};

/// Sentinel binding for "the flow's own rate_cap binds" (single-stream
/// protocol limit), distinguishable from any real ResourceId.
inline constexpr ResourceId kCapBinding = 0xffffffffu;

/// Max-min fair flow-level simulator.
class FlowSimulator {
 public:
  FlowSimulator() = default;

  /// Add a shared resource. `beta` is the concurrency degradation factor
  /// (0 for NICs/switches, > 0 for disks).
  ResourceId add_resource(BytesPerSec capacity, double beta = 0.0);

  /// Opt in to worker-pool re-leveling (DESIGN.md §12): when `pool` has more
  /// than one lane, each rate recomputation water-fills its dirty connected
  /// components concurrently and commits the pinned rates serially in
  /// ascending component-id order. Every simulation output is byte-identical
  /// to the serial path — max-min is component-decomposable, pinned levels
  /// are component-local values, and the per-resource floating-point commit
  /// order within a component is preserved (the proof obligations are spelled
  /// out above recompute_rates_parallel()). Borrowed; pass nullptr (or a
  /// 1-lane pool) to return to the serial path.
  void set_parallelism(ThreadPool* pool) { pool_ = pool; }

  std::uint32_t resource_count() const { return static_cast<std::uint32_t>(resources_.size()); }

  /// Change a resource's base capacity in place (slow-node degradation and
  /// restoration). Flows crossing the resource are re-leveled before the
  /// next event is processed, so the new rate takes effect at the current
  /// virtual time; progress up to now is committed at the old rate.
  void set_resource_capacity(ResourceId r, BytesPerSec capacity);

  /// Current base capacity of a resource (before concurrency degradation).
  BytesPerSec resource_capacity(ResourceId r) const;

  /// Start a flow of `bytes` across `resources` now; `on_complete(end_time)`
  /// fires when the last byte arrives. Zero-byte flows complete immediately
  /// on the next event-loop step. `rate_cap` bounds the flow's own rate
  /// regardless of resource availability (models single-stream protocol
  /// limits, e.g. one HDFS read over one TCP connection); 0 means uncapped.
  FlowId start_flow(std::vector<ResourceId> resources, Bytes bytes,
                    std::function<void(Seconds)> on_complete, BytesPerSec rate_cap = 0);

  /// Schedule `fn(time)` at absolute virtual time `when` (>= now).
  void at(Seconds when, std::function<void(Seconds)> fn);

  /// Schedule `fn(time)` after `delay` seconds.
  void after(Seconds delay, std::function<void(Seconds)> fn) { at(now_ + delay, std::move(fn)); }

  /// Cancel an in-flight flow: it releases its resources immediately and its
  /// completion callback never fires. No-op if already complete/cancelled.
  void cancel_flow(FlowId id);

  /// True while the flow is still transferring.
  bool flow_active(FlowId id) const;

  /// Opt in to binding-resource attribution: every re-level appends to each
  /// touched flow's interval list which constraint pinned its rate (the
  /// bottleneck resource, or kCapBinding when its own rate cap bound). Off by
  /// default — recording costs memory per active flow and must never perturb
  /// the simulation (it only observes the pin sequence, which is already
  /// byte-deterministic).
  void record_attribution(bool on) { record_attr_ = on; }
  bool attribution_recording() const { return record_attr_; }

  /// Binding intervals of a flow that completed at the current event step;
  /// valid only inside its completion callback (the stash is dropped before
  /// the next event is processed). Returns nullptr when the id is unknown,
  /// the flow was cancelled, or recording is off. The intervals chain from
  /// the flow's start tick to its completion tick; zero-byte flows have an
  /// empty list (start == end).
  const std::vector<BindingInterval>* completed_attribution(FlowId id) const;

  /// Run until no flows or timers remain. Returns the final virtual time.
  Seconds run();

  Seconds now() const { return now_; }

  /// Number of flows currently in progress.
  std::size_t active_flows() const { return flows_active_; }

  /// Number of active flows using a resource (for load-aware policies).
  std::uint32_t resource_load(ResourceId r) const;

  /// Highest number of flows ever simultaneously active on the resource —
  /// the peak queue depth of the disk/NIC over the run so far.
  std::uint32_t resource_peak_load(ResourceId r) const;

  /// Number of flow arrivals that found the resource already occupied while
  /// its degradation factor is positive — i.e. how often a disk was pushed
  /// into the head-thrash regime (`cap / (1 + beta * (k - 1))`). Always 0
  /// for beta == 0 resources (NICs, uplinks).
  std::uint64_t resource_degraded_joins(ResourceId r) const;

  /// Cumulative time the resource had at least one active flow (busy time).
  Seconds resource_busy_time(ResourceId r) const;

  /// Cumulative bytes pushed through the resource by all flows crossing it.
  double resource_bytes_served(ResourceId r) const;

  /// Busy fraction over [0, now]; 0 when no time has elapsed.
  double resource_utilization(ResourceId r) const;

  // --- scalability observability -------------------------------------------

  /// Flow slots ever allocated. Slots are reused from a free list before the
  /// pool grows, so this equals the peak number of simultaneously live flows,
  /// not the total number of flows started.
  std::uint32_t flow_slot_count() const { return static_cast<std::uint32_t>(flows_.size()); }

  /// Highest number of flows simultaneously active over the run so far.
  std::uint32_t peak_active_flows() const { return peak_active_flows_; }

  /// Number of incremental rate recomputations performed.
  std::uint64_t rate_recomputes() const { return rate_recomputes_; }

  /// Cumulative flows re-leveled across all rate recomputations; divide by
  /// `rate_recomputes()` for the mean touched-component size.
  std::uint64_t rate_recompute_touched_flows() const { return rate_recompute_touched_; }

  /// Largest connected component (in flows) any single recomputation touched.
  std::uint32_t max_relevel_component() const { return max_relevel_component_; }

  /// ETA-heap entries discarded because their flow's rate changed (or the
  /// flow retired) after they were queued — the cost of lazy invalidation.
  std::uint64_t eta_stale_pops() const { return eta_stale_pops_; }

 private:
  struct Resource {
    BytesPerSec capacity = 0;
    double beta = 0;
    std::uint32_t active = 0;      // flows currently crossing this resource
    std::uint32_t peak_active = 0; // max concurrent flows seen so far
    std::uint64_t degraded_joins = 0;  // arrivals into an occupied beta>0 disk
    double busy_time = 0;          // closed busy intervals (active > 0 spans)
    Seconds busy_since = 0;        // open-interval start, valid while active > 0
    double bytes_served = 0;       // committed throughput (anchored progress)
    std::vector<std::uint32_t> flows;  // slots of flows crossing this resource
    bool dirty = false;            // membership changed since last re-level
    std::uint64_t visit = 0;       // component-BFS stamp
    // Water-filling scratch, valid only inside recompute_rates(). wf_epoch
    // stamps share-heap entries: any entry pushed before the last
    // remaining/unfixed change is stale.
    double remaining = 0;
    std::uint32_t unfixed = 0;
    std::uint32_t wf_epoch = 0;
  };

  struct Flow {
    std::vector<ResourceId> resources;
    double bytes_anchor = 0;   // bytes left as of anchor_time
    Seconds anchor_time = 0;   // last rate change (progress committed up to here)
    double rate = 0;
    double rate_cap = 0;       // 0 = uncapped
    std::function<void(Seconds)> on_complete;
    std::uint64_t seq = 0;     // creation sequence; low 32 bits tag the FlowId
    std::uint32_t epoch = 0;   // bumped on rate change/retire; stamps ETA entries
    bool active = false;
    std::uint64_t visit = 0;   // component-BFS stamp
    std::uint64_t fixed = 0;   // == visit stamp once pinned in this re-level
    // Binding-interval history (record_attribution only). The last entry is
    // the open interval; its end_ticks is stale until the next close.
    std::vector<BindingInterval> attr;
  };

  struct Timer {
    Seconds when;
    std::uint64_t seq;
    std::function<void(Seconds)> fn;
    bool operator>(const Timer& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  /// Queued completion estimate. Stale once the flow's epoch moves past the
  /// stamped one; re-validated against exact remaining bytes when popped.
  struct Eta {
    Seconds when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t epoch;
    bool operator>(const Eta& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  /// Share-heap entry for water-filling: a resource's fair share at the time
  /// of the push; stale once the resource's wf_epoch moved on.
  struct ShareEntry {
    double share;
    ResourceId r;
    std::uint32_t epoch;
    bool operator>(const ShareEntry& o) const {
      return share != o.share ? share > o.share : r > o.r;
    }
  };

  /// Cap-heap entry: an unfixed capped flow, stale once the flow is pinned.
  struct CapEntry {
    double cap;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const CapEntry& o) const {
      return cap != o.cap ? cap > o.cap : seq > o.seq;
    }
  };

  /// One dirty connected component: half-open spans into comp_resources_ /
  /// comp_flows_. Components are disjoint by construction (a shared resource
  /// or flow would merge them in the BFS).
  struct CompSpan {
    std::uint32_t res_begin, res_end;
    std::uint32_t flow_begin, flow_end;
  };

  /// A rate pinned by water-filling but not yet committed: the parallel path
  /// stages (slot, share, binding) per component, then commits through
  /// set_rate() in ascending component order.
  struct PinnedRate {
    std::uint32_t slot;
    double share;
    ResourceId binding;
  };

  /// Per-chunk water-filling scratch for the parallel path (the serial path
  /// uses the share_heap_ / cap_heap_ members directly).
  struct WfScratch {
    std::vector<ShareEntry> share_heap;
    std::vector<CapEntry> cap_heap;
  };

  static std::uint32_t slot_of(FlowId id) { return static_cast<std::uint32_t>(id); }
  static std::uint32_t tag_of(FlowId id) { return static_cast<std::uint32_t>(id >> 32); }

  double bytes_left_at(const Flow& f, Seconds t) const;
  void mark_dirty(ResourceId r);
  void push_eta(std::uint32_t slot);
  void commit_progress(Flow& f);
  void note_binding(Flow& f, ResourceId binding);
  void stash_attribution(std::uint32_t slot);
  void set_rate(std::uint32_t slot, double rate, ResourceId binding);
  template <typename PinSink>
  void water_fill(const std::uint32_t* comp_res, std::size_t res_count,
                  const std::uint32_t* comp_flows, std::size_t flow_count,
                  std::vector<ShareEntry>& share_heap, std::vector<CapEntry>& cap_heap,
                  PinSink&& sink);
  void retire_slot(std::uint32_t slot);
  double next_completion_time();
  void recompute_rates();
  void recompute_rates_parallel();
  void advance_to(Seconds t);
  void audit_retired_slot(std::uint32_t slot) const;

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;                  // slot pool; retired slots are reused
  std::vector<std::uint32_t> free_slots_;
  std::size_t flows_active_ = 0;
  std::uint32_t peak_active_flows_ = 0;
  std::vector<Timer> timers_;                // min-heap via std::push_heap/pop_heap
  std::vector<Eta> etas_;                    // min-heap, lazily invalidated
  Seconds now_ = 0;
  std::uint64_t timer_seq_ = 0;
  std::uint64_t flow_seq_ = 0;
  std::uint64_t visit_stamp_ = 0;
  std::vector<std::uint32_t> dirty_resources_;

  // Reusable workspaces (steady-state allocation-free, cf. graph::FlowWorkspace).
  std::vector<std::uint32_t> comp_resources_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<ShareEntry> share_heap_;
  std::vector<CapEntry> cap_heap_;
  ThreadPool* pool_ = nullptr;  // borrowed; nullptr = serial re-leveling
  std::vector<CompSpan> comp_spans_;
  std::vector<std::uint64_t> comp_weights_;  // per-component flow weights
  std::vector<PinnedRate> pinned_;
  std::vector<WfScratch> wf_scratch_;
  std::vector<Eta> requeued_;
  std::vector<std::uint32_t> completed_;
  std::vector<std::function<void(Seconds)>> callbacks_;

  // Attribution recording (record_attribution). finished_attr_ stashes the
  // interval lists of the flows completing at the current event step, keyed
  // by their full FlowId, for completion callbacks to pick up; it is dropped
  // before the next event is processed.
  bool record_attr_ = false;
  std::vector<std::pair<FlowId, std::vector<BindingInterval>>> finished_attr_;

  std::uint64_t rate_recomputes_ = 0;
  std::uint64_t rate_recompute_touched_ = 0;
  std::uint32_t max_relevel_component_ = 0;
  std::uint64_t eta_stale_pops_ = 0;
};

}  // namespace opass::sim
