// Flow-level discrete-event simulator.
//
// A *flow* is a bulk data transfer (one chunk read) that traverses a set of
// resources (source disk; plus source/destination NICs when remote). At any
// instant, active flows receive a max-min fair allocation of resource
// capacities; the engine advances virtual time to the earliest flow
// completion or timer, fires callbacks (which may start new flows), and
// recomputes rates. This is the standard fluid approximation of TCP-like
// bandwidth sharing, and it is what turns "8 chunks served by one node" into
// "8x slower reads" — the paper's core observation.
//
// Disk resources additionally degrade under concurrency (head thrash): with k
// active flows, effective capacity = base / (1 + beta * (k - 1)).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace opass::sim {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

/// Max-min fair flow-level simulator.
class FlowSimulator {
 public:
  FlowSimulator() = default;

  /// Add a shared resource. `beta` is the concurrency degradation factor
  /// (0 for NICs/switches, > 0 for disks).
  ResourceId add_resource(BytesPerSec capacity, double beta = 0.0);

  std::uint32_t resource_count() const { return static_cast<std::uint32_t>(resources_.size()); }

  /// Start a flow of `bytes` across `resources` now; `on_complete(end_time)`
  /// fires when the last byte arrives. Zero-byte flows complete immediately
  /// on the next event-loop step. `rate_cap` bounds the flow's own rate
  /// regardless of resource availability (models single-stream protocol
  /// limits, e.g. one HDFS read over one TCP connection); 0 means uncapped.
  FlowId start_flow(std::vector<ResourceId> resources, Bytes bytes,
                    std::function<void(Seconds)> on_complete, BytesPerSec rate_cap = 0);

  /// Schedule `fn(time)` at absolute virtual time `when` (>= now).
  void at(Seconds when, std::function<void(Seconds)> fn);

  /// Schedule `fn(time)` after `delay` seconds.
  void after(Seconds delay, std::function<void(Seconds)> fn) { at(now_ + delay, std::move(fn)); }

  /// Cancel an in-flight flow: it releases its resources immediately and its
  /// completion callback never fires. No-op if already complete/cancelled.
  void cancel_flow(FlowId id);

  /// True while the flow is still transferring.
  bool flow_active(FlowId id) const;

  /// Run until no flows or timers remain. Returns the final virtual time.
  Seconds run();

  Seconds now() const { return now_; }

  /// Number of flows currently in progress.
  std::size_t active_flows() const { return flows_active_; }

  /// Number of active flows using a resource (for load-aware policies).
  std::uint32_t resource_load(ResourceId r) const;

  /// Highest number of flows ever simultaneously active on the resource —
  /// the peak queue depth of the disk/NIC over the run so far.
  std::uint32_t resource_peak_load(ResourceId r) const;

  /// Number of flow arrivals that found the resource already occupied while
  /// its degradation factor is positive — i.e. how often a disk was pushed
  /// into the head-thrash regime (`cap / (1 + beta * (k - 1))`). Always 0
  /// for beta == 0 resources (NICs, uplinks).
  std::uint64_t resource_degraded_joins(ResourceId r) const;

  /// Cumulative time the resource had at least one active flow (busy time).
  Seconds resource_busy_time(ResourceId r) const;

  /// Cumulative bytes pushed through the resource by all flows crossing it.
  double resource_bytes_served(ResourceId r) const;

  /// Busy fraction over [0, now]; 0 when no time has elapsed.
  double resource_utilization(ResourceId r) const;

 private:
  struct Resource {
    BytesPerSec capacity;
    double beta;
    std::uint32_t active = 0;      // flows currently crossing this resource
    std::uint32_t peak_active = 0; // max concurrent flows seen so far
    std::uint64_t degraded_joins = 0;  // arrivals into an occupied beta>0 disk
    double busy_time = 0;          // accumulated time with active > 0
    double bytes_served = 0;       // accumulated throughput
  };

  struct Flow {
    std::vector<ResourceId> resources;
    double bytes_left;
    double rate = 0;
    double rate_cap = 0;  // 0 = uncapped
    std::function<void(Seconds)> on_complete;
    bool active = false;
  };

  struct Timer {
    Seconds when;
    std::uint64_t seq;
    std::function<void(Seconds)> fn;
    bool operator>(const Timer& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void recompute_rates();
  void advance_to(Seconds t);

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
  std::size_t flows_active_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  Seconds now_ = 0;
  std::uint64_t timer_seq_ = 0;
  bool rates_dirty_ = false;
};

}  // namespace opass::sim
