// Simulated cluster: per-node disk and NIC resources on top of FlowSimulator,
// calibrated to the Marmot testbed (GigE network, one SATA disk per node).
//
// A local read streams through the node's disk only; a remote read streams
// through the server's disk, the server's NIC-out and the reader's NIC-in
// (all nodes hang off one switch, as on Marmot, so there is no core
// bottleneck). Every read also pays a fixed positioning latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "dfs/topology.hpp"
#include "dfs/types.hpp"
#include "sim/flow_sim.hpp"

namespace opass::sim {

/// Hardware calibration. Defaults reproduce the paper's magnitudes: ~0.9 s
/// for an uncontended 64 MB local read, 2–12 s for contended remote reads.
struct ClusterParams {
  BytesPerSec disk_bandwidth = 75.0 * 1024 * 1024;  ///< SATA streaming rate
  BytesPerSec nic_bandwidth = 112.0 * 1024 * 1024;  ///< GigE payload rate
  double disk_beta = 0.25;   ///< disk head-thrash degradation per extra stream
  Seconds seek_latency = 0.05;   ///< positioning + request setup per read
  Seconds remote_latency = 0.002;  ///< extra network round-trip for remote reads
  /// Effective single-stream throughput of one remote HDFS read (one TCP
  /// connection + RPC framing on GigE-era hardware). This is why the paper
  /// sees "more than 2 seconds" for an uncontended remote 64 MB read while
  /// local reads take ~0.9 s. 0 disables the cap.
  BytesPerSec remote_stream_cap = 30.0 * 1024 * 1024;
  /// Shared uplink capacity per rack, each direction (0 = flat network, the
  /// paper's single-switch Marmot). Cross-rack transfers traverse the source
  /// rack's up-link and the destination rack's down-link, modelling an
  /// oversubscribed core.
  BytesPerSec rack_uplink_bandwidth = 0;
  /// Extra round-trip latency for cross-rack transfers.
  Seconds cross_rack_latency = 0.001;
  /// DataNode admission control (HDFS's dfs.datanode.max.transfer.threads /
  /// "xceiver" limit): at most this many reads are served concurrently per
  /// node; excess requests wait in a FIFO queue. 0 = unlimited (pure
  /// bandwidth sharing, the default model).
  std::uint32_t max_concurrent_serves = 0;
};

/// What role a FlowSimulator resource plays in the cluster's hardware model.
/// The obs layer uses this to classify binding-resource intervals into the
/// paper's causal buckets (source disk / source NIC / dest NIC / uplink).
enum class ResourceRole : std::uint8_t {
  kDisk,
  kNicIn,
  kNicOut,
  kRackUp,
  kRackDown,
};

/// Role and owner of one simulator resource: `owner` is a NodeId for
/// disk/NIC roles and a RackId for uplink roles.
struct ResourceInfo {
  ResourceRole role = ResourceRole::kDisk;
  std::uint32_t owner = 0;
};

/// One speed-factor change (degrade_node / restore_node), in event order.
/// Lets post-hoc consumers decide whether a node was degraded at a given
/// virtual tick without keeping a per-tick speed series.
struct SpeedChange {
  std::int64_t ticks = 0;  ///< to_ticks(virtual time) of the change
  dfs::NodeId node = 0;
  double factor = 1.0;
};

/// Causal breakdown of one completed read (record_read_breakdown): the
/// admission-queue wait, the positioning phase and the transfer phase as
/// integer virtual-time ticks, plus the transfer's binding-resource
/// intervals. Boundaries chain (issue <= admit <= transfer_start <= end and
/// the intervals tile [transfer_start, end]), so phase durations sum exactly
/// to the read's span.
struct ReadBreakdown {
  std::int64_t issue_ticks = 0;           ///< request issued (queue entry)
  std::int64_t admit_ticks = 0;           ///< past the admission gate
  std::int64_t transfer_start_ticks = 0;  ///< positioning done, flow started
  std::int64_t end_ticks = 0;             ///< last byte arrived
  std::vector<BindingInterval> transfer;  ///< tiles [transfer_start, end]
};

/// Read-lifecycle observer. The cluster stays metric-blind (DESIGN.md §8):
/// it only reports state transitions; translating them into time series is
/// the obs layer's job (obs::ClusterTimelineProbe). Callbacks fire *after*
/// the cluster's own accounting updated, so a probe may read the public
/// accessors (inflight_per_node(), read_slot_count(), ...) for the
/// post-transition state.
class ClusterProbe {
 public:
  virtual ~ClusterProbe() = default;

  /// A read for `bytes` on `server` entered the in-flight set (admission
  /// queueing included — the request occupies the node either way).
  virtual void on_read_issued(Seconds now, dfs::NodeId server, Bytes bytes) = 0;

  /// A previously issued read left the in-flight set: `completed` is true
  /// for a normal completion, false when a node failure aborted it.
  virtual void on_read_finished(Seconds now, dfs::NodeId server, Bytes bytes,
                                bool completed) = 0;
};

/// Simulated cluster of `node_count` identical nodes.
class Cluster {
 public:
  /// Flat (single-switch) cluster, as on Marmot.
  Cluster(std::uint32_t node_count, ClusterParams params = {});

  /// Rack topology; when params.rack_uplink_bandwidth > 0, cross-rack
  /// transfers share per-rack uplinks.
  Cluster(const dfs::Topology& topology, ClusterParams params = {});

  std::uint32_t node_count() const { return node_count_; }
  const ClusterParams& params() const { return params_; }

  /// Rack of a node (all 0 on a flat cluster).
  dfs::RackId rack_of(dfs::NodeId node) const;

  FlowSimulator& simulator() { return sim_; }
  const FlowSimulator& simulator() const { return sim_; }

  /// Issue a read of `bytes` from `server`'s disk into a process on
  /// `reader`. `on_complete(end_time)` fires when the transfer finishes.
  /// If the server fails (fail_node) before completion — or is already
  /// failed at issue time — `on_failure(time)` fires instead (when provided;
  /// reads without a failure handler on a failing server simply vanish,
  /// which no executor in this repo does). Tracks per-node in-flight counts
  /// and served bytes.
  void read(dfs::NodeId reader, dfs::NodeId server, Bytes bytes,
            std::function<void(Seconds)> on_complete,
            std::function<void(Seconds)> on_failure = nullptr);

  /// Fail `node` at virtual time `when` (>= now): every read it is serving
  /// aborts (the reader's on_failure fires), and subsequent reads addressed
  /// to it fail immediately. Mirrors a machine crash; metadata-level
  /// recovery (re-replication) lives in dfs::NameNode::decommission_node.
  void fail_node(dfs::NodeId node, Seconds when);

  /// Scale `node`'s disk and NIC capacities by `factor` in (0, 1], effective
  /// immediately (active transfers re-level at the current virtual time).
  /// Models a straggler: overloaded VM, failing disk, background scan.
  /// Factors don't compound — the factor is always relative to the
  /// calibrated base rates, so degrade(0.5) then degrade(0.25) leaves the
  /// node at 25%, and restore_node puts it back at 100%.
  void degrade_node(dfs::NodeId node, double factor);

  /// Undo degrade_node: the node's disk and NICs return to full speed.
  void restore_node(dfs::NodeId node);

  /// Current speed factor of a node (1.0 = full speed).
  double speed_factor(dfs::NodeId node) const;

  /// Grow the cluster by one node on `rack` at the current virtual time;
  /// returns the new node's id (== old node_count()). The new node starts
  /// idle, healthy and empty. When rack uplinks are modeled, `rack` must be
  /// an existing rack. Mirrors dfs::NameNode::add_node — callers keep the
  /// two membership views in step (sim::FaultInjector does this).
  dfs::NodeId add_node(dfs::RackId rack = 0);

  /// Replicate `bytes` from `src`'s disk onto `dst`'s disk (re-replication /
  /// balancer traffic). The transfer streams through src's disk and NIC-out,
  /// dst's NIC-in and disk (plus rack uplinks when modeled), competing with
  /// reads for the same resources, and it respects the per-node admission
  /// gate on `src`. If `src` fails before completion, `on_failure(time)`
  /// fires instead (dst failing mid-copy is not modeled).
  void replicate(dfs::NodeId src, dfs::NodeId dst, Bytes bytes,
                 std::function<void(Seconds)> on_complete,
                 std::function<void(Seconds)> on_failure = nullptr);

  /// True once the node's failure time has passed.
  bool is_failed(dfs::NodeId node) const;

  /// True once any node's failure time has passed (cheap global check that
  /// lets readers skip per-replica liveness filtering on healthy clusters).
  bool has_failed_nodes() const { return any_failed_; }

  /// Network-only transfer `src` -> `dst` (no disk involvement): MPI
  /// messages, RPCs. Same-node sends pay only the local software latency.
  void send(dfs::NodeId src, dfs::NodeId dst, Bytes bytes,
            std::function<void(Seconds)> on_complete);

  /// HDFS-style replication write pipeline: `writer` streams `bytes` through
  /// the chain of `replicas` (client -> r1 -> r2 -> ...), each replica also
  /// writing to its disk. Modelled as one pipelined flow whose rate is the
  /// minimum across every link and disk on the chain (cut-through
  /// streaming), plus per-hop latency. A replica equal to the writer skips
  /// its network hop (the local-first-replica case).
  void write_pipeline(dfs::NodeId writer, const std::vector<dfs::NodeId>& replicas,
                      Bytes bytes, std::function<void(Seconds)> on_complete);

  /// Reads currently being served by each node (in-flight, including the
  /// positioning phase). Used by least-loaded replica choice.
  const std::vector<std::uint32_t>& inflight_per_node() const { return inflight_; }

  /// Total bytes each node has served so far (completed reads).
  const std::vector<Bytes>& served_bytes() const { return served_; }

  /// Busy fraction of a node's disk over the run so far (paper's "lower
  /// parallelism utilization of cluster nodes/disks" observation).
  double disk_utilization(dfs::NodeId node) const;

  /// Busy fraction of a node's egress NIC.
  double nic_out_utilization(dfs::NodeId node) const;

  /// Cumulative seconds the node's disk had at least one active transfer.
  Seconds disk_busy_time(dfs::NodeId node) const;

  /// Peak number of concurrent transfers on the node's disk — the depth of
  /// the hot-node convoy the paper's Fig. 1 observes.
  std::uint32_t disk_peak_load(dfs::NodeId node) const;

  /// How often a transfer arrived at this node's disk while it was already
  /// serving (head-thrash degradation events; see FlowSimulator).
  std::uint64_t disk_degraded_joins(dfs::NodeId node) const;

  /// Number of reads that had to wait in the node's admission FIFO (only
  /// non-zero when params().max_concurrent_serves > 0).
  std::uint64_t admission_waits(dfs::NodeId node) const;

  /// Peak depth of the node's admission FIFO over the run so far.
  std::uint32_t peak_admission_queue(dfs::NodeId node) const;

  /// Run the simulation to quiescence; returns the final virtual time.
  Seconds run() { return sim_.run(); }

  /// Read-op slots ever allocated. Slots are reused from a free list, so this
  /// equals the peak number of simultaneously in-flight reads, not the total
  /// number of reads issued.
  std::uint32_t read_slot_count() const { return static_cast<std::uint32_t>(read_pool_.size()); }

  /// Attach (or with nullptr, detach) a read-lifecycle probe. Borrowed; must
  /// outlive the cluster or be detached first. At most one at a time.
  void set_probe(ClusterProbe* probe) { probe_ = probe; }

  // --- causal tracing (obs/spans) ------------------------------------------

  /// Role and owner of a simulator resource this cluster created.
  ResourceInfo resource_info(ResourceId r) const;

  /// Every degrade/restore event so far, in application order (to_ticks
  /// timestamps). Consumers replay it to decide whether a binding resource's
  /// owner was running slow during an interval.
  const std::vector<SpeedChange>& speed_changes() const { return speed_changes_; }

  /// Opt in to per-read causal breakdowns: each completed read's phase
  /// boundaries and binding-resource intervals become available to its
  /// completion callback via last_read_breakdown(). Enables the simulator's
  /// attribution recording; off by default (observation only — the simulated
  /// schedule is unchanged).
  void record_read_breakdown(bool on);
  bool read_breakdown_recording() const { return record_breakdown_; }

  /// Breakdown of the read whose on_complete is currently being invoked;
  /// valid only inside that callback and only while recording. The returned
  /// reference is overwritten by the next completion.
  const ReadBreakdown& last_read_breakdown() const { return last_breakdown_; }

 private:
  /// Internal read handle: low 32 bits address a reusable slot in
  /// `read_pool_`, high 32 bits carry the generation tag that makes handles
  /// to finished reads inert (same scheme as sim::FlowId).
  using ReadId = std::uint64_t;

  struct ReadOp {
    dfs::NodeId reader = 0;
    dfs::NodeId server = 0;
    Bytes bytes = 0;
    std::uint32_t tag = 0;      // generation of the current occupant
    bool active = false;        // slot occupied
    bool admitted = false;      // past the per-node admission gate
    bool transferring = false;  // false while in the positioning phase
    bool copy = false;          // replicate(): destination disk joins the path
    FlowId flow = 0;            // valid when transferring
    std::int64_t issue_ticks = 0;   // phase boundaries (record_read_breakdown)
    std::int64_t admit_ticks = 0;
    std::int64_t transfer_start_ticks = 0;
    std::function<void(Seconds)> on_complete;
    std::function<void(Seconds)> on_failure;
  };

  void start_read(dfs::NodeId reader, dfs::NodeId server, Bytes bytes, bool copy,
                  std::function<void(Seconds)> on_complete,
                  std::function<void(Seconds)> on_failure);
  void admit(ReadId id);
  void retire_read(std::uint32_t slot);
  void release_serve_slot(dfs::NodeId server);

  std::uint32_t node_count_;
  ClusterParams params_;
  ClusterProbe* probe_ = nullptr;
  FlowSimulator sim_;
  std::vector<ResourceId> disk_, nic_in_, nic_out_;
  std::vector<dfs::RackId> rack_of_node_;
  std::vector<ResourceId> rack_up_, rack_down_;  // per rack, when modeled
  std::vector<std::uint32_t> inflight_;
  std::vector<Bytes> served_;
  std::vector<char> failed_;
  std::vector<double> speed_;  // per-node capacity factor, 1.0 = full speed
  bool any_failed_ = false;
  std::vector<ReadOp> read_pool_;               // slot pool, free-list reused
  std::vector<std::uint32_t> free_read_slots_;
  std::uint64_t read_seq_ = 0;
  std::vector<std::uint32_t> serving_;             // admitted reads per node
  std::vector<std::deque<ReadId>> waiting_;        // admission FIFO per node
  std::vector<std::uint64_t> admission_waits_;     // reads ever queued, per node
  std::vector<std::uint32_t> peak_queue_;          // max FIFO depth, per node
  std::vector<ResourceInfo> resource_info_;        // indexed by ResourceId
  std::vector<SpeedChange> speed_changes_;
  bool record_breakdown_ = false;
  ReadBreakdown last_breakdown_;  // of the read completing right now
};

}  // namespace opass::sim
