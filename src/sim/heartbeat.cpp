#include "sim/heartbeat.hpp"

#include "common/require.hpp"

namespace opass::sim {

HeartbeatMonitor::HeartbeatMonitor(Cluster& cluster, dfs::NameNode& nn,
                                   dfs::NodeId namenode_host, Rng& rng, Params params)
    : cluster_(cluster), nn_(nn), namenode_host_(namenode_host), rng_(rng), params_(params),
      last_beat_(cluster.node_count(), 0.0), declared_at_(cluster.node_count(), -1.0) {
  OPASS_REQUIRE(namenode_host < cluster.node_count(), "NameNode host out of range");
  OPASS_REQUIRE(params_.interval > 0, "heartbeat interval must be positive");
  OPASS_REQUIRE(params_.miss_threshold > 0, "miss threshold must be positive");
  OPASS_REQUIRE(nn.node_count() == cluster.node_count(),
                "NameNode and cluster disagree on node count");
}

void HeartbeatMonitor::start(Seconds horizon) {
  const Seconds now = cluster_.simulator().now();
  OPASS_REQUIRE(horizon > now, "horizon must lie in the future");
  for (dfs::NodeId n = 0; n < cluster_.node_count(); ++n) {
    last_beat_[n] = now;  // everyone is presumed alive at start
    schedule_beat(n, now + params_.interval, horizon);
  }
  schedule_check(now + params_.interval, horizon);
}

void HeartbeatMonitor::watch_node(dfs::NodeId node, Seconds horizon) {
  OPASS_REQUIRE(node == last_beat_.size(), "watch_node ids must stay dense");
  OPASS_REQUIRE(node < cluster_.node_count(), "node not in the cluster yet");
  const Seconds now = cluster_.simulator().now();
  last_beat_.push_back(now);
  declared_at_.push_back(-1.0);
  schedule_beat(node, now + params_.interval, horizon);
}

void HeartbeatMonitor::schedule_beat(dfs::NodeId node, Seconds when, Seconds horizon) {
  if (when > horizon) return;
  cluster_.simulator().at(when, [this, node, when, horizon](Seconds) {
    // A failed node sends nothing — that silence is the detection signal.
    if (!cluster_.is_failed(node)) {
      cluster_.send(node, namenode_host_, params_.heartbeat_bytes,
                    [this, node](Seconds arrival) {
                      last_beat_[node] = std::max(last_beat_[node], arrival);
                    });
    }
    schedule_beat(node, when + params_.interval, horizon);
  });
}

void HeartbeatMonitor::schedule_check(Seconds when, Seconds horizon) {
  if (when > horizon) return;
  cluster_.simulator().at(when, [this, when, horizon](Seconds now) {
    const Seconds deadline =
        params_.interval * static_cast<double>(params_.miss_threshold) +
        params_.interval;  // one interval of slack for wire latency
    // Bound by the watched set, not cluster_.node_count(): nodes added since
    // the last check are only tracked once watch_node registered them.
    for (dfs::NodeId n = 0; n < last_beat_.size(); ++n) {
      if (declared_at_[n] >= 0) continue;
      if (now - last_beat_[n] <= deadline) continue;
      declared_at_[n] = now;
      ++recoveries_;
      if (recovery_) {
        recovery_(n, now);
      } else {
        // Default: the NameNode re-replicates every block the dead node
        // held, instantly (metadata only; no traffic is modeled).
        nn_.decommission_node(n, rng_);
      }
    }
    schedule_check(when + params_.interval, horizon);
  });
}

bool HeartbeatMonitor::declared_dead(dfs::NodeId node) const {
  OPASS_REQUIRE(node < declared_at_.size(), "node out of range");
  return declared_at_[node] >= 0;
}

Seconds HeartbeatMonitor::detection_time(dfs::NodeId node) const {
  OPASS_REQUIRE(node < declared_at_.size(), "node out of range");
  return declared_at_[node];
}

}  // namespace opass::sim
