// HDFS-style failure detection and recovery.
//
// DataNodes heartbeat the NameNode host every few seconds; when a node
// misses enough consecutive beats (because it crashed), the NameNode
// declares it dead and recovers it — closing the loop between the runtime
// failure model (Cluster::fail_node) and the metadata layer. Heartbeats are
// real simulated messages, so a congested NameNode link delays detection
// exactly as it would in production.
//
// Detection window. A node is declared dead at the first miss check where
// `now - last_beat > interval * miss_threshold + interval`; the extra
// interval absorbs wire latency of the last beat in flight. With the
// defaults (3 s interval, 3 misses) a node that crashes at time t is
// declared dead at the first check after t + 12 s — crashing *exactly on* a
// beat boundary still sends that boundary's beat, so the window is measured
// from the last beat that actually left the node.
//
// Recovery. By default a declared-dead node is handed to
// NameNode::decommission_node (instant, metadata-only re-replication). A
// recovery handler installed via set_recovery_handler replaces that default
// — sim::FaultInjector uses this to re-replicate with real simulated
// traffic instead.
//
// Thread-safety: like the rest of the simulator, this class is
// single-threaded — all state is confined to the simulation thread driving
// FlowSimulator::run(), so no field carries OPASS_GUARDED_BY (see
// common/thread_annotations.hpp for the vocabulary used once state is
// shared). Do not call any member from another thread while run() is live.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "sim/cluster.hpp"

namespace opass::sim {

/// Heartbeat cadence and detection thresholds.
struct HeartbeatParams {
  Seconds interval = 3.0;            ///< beat period (HDFS default: 3 s)
  std::uint32_t miss_threshold = 3;  ///< consecutive misses before declaring dead
  Bytes heartbeat_bytes = 128;       ///< wire size of one beat
};

/// Periodic heartbeat + miss detection + automatic re-replication.
class HeartbeatMonitor {
 public:
  using Params = HeartbeatParams;

  /// Called when a node is declared dead: (node, declaration time). Runs
  /// inside the simulation event loop, so it may schedule traffic and mutate
  /// cluster/NameNode state, but must not call HeartbeatMonitor::start.
  using RecoveryHandler = std::function<void(dfs::NodeId, Seconds)>;

  /// `namenode_host` is the node the beats travel to (the metadata server).
  /// Preconditions: the host is in range, the params are positive, and the
  /// NameNode and cluster agree on the node count.
  HeartbeatMonitor(Cluster& cluster, dfs::NameNode& nn, dfs::NodeId namenode_host, Rng& rng,
                   HeartbeatParams params = {});

  /// Schedule heartbeats and miss checks from now until `horizon` (virtual
  /// time). The simulation still quiesces at the horizon, so run() keeps
  /// its run-to-idle semantics. Precondition: `horizon` lies in the future.
  /// Call at most once per monitor.
  void start(Seconds horizon);

  /// Track a node added to the cluster after start() (churn join): it begins
  /// heartbeating at the current virtual time. Preconditions: start() was
  /// called, `node` is the id just returned by Cluster::add_node, and the
  /// monitor is not yet tracking it (ids are dense).
  void watch_node(dfs::NodeId node, Seconds horizon);

  /// Replace the default recovery action (NameNode::decommission_node) with
  /// `handler`. Postcondition: on every future declaration the handler runs
  /// instead of the default; detection bookkeeping (declared_dead,
  /// detection_time, recoveries) is unchanged. Pass nullptr to restore the
  /// default.
  void set_recovery_handler(RecoveryHandler handler) { recovery_ = std::move(handler); }

  /// True once the monitor declared the node dead and triggered recovery.
  bool declared_dead(dfs::NodeId node) const;

  /// Virtual time the node was declared dead, or a negative value if alive.
  Seconds detection_time(dfs::NodeId node) const;

  /// Number of nodes declared dead and recovered so far.
  std::uint32_t recoveries() const { return recoveries_; }

 private:
  void schedule_beat(dfs::NodeId node, Seconds when, Seconds horizon);
  void schedule_check(Seconds when, Seconds horizon);

  Cluster& cluster_;
  dfs::NameNode& nn_;
  dfs::NodeId namenode_host_;
  Rng& rng_;
  HeartbeatParams params_;
  RecoveryHandler recovery_;          // empty = default decommission_node
  std::vector<Seconds> last_beat_;    // one entry per *watched* node
  std::vector<Seconds> declared_at_;  // < 0 while alive
  std::uint32_t recoveries_ = 0;
};

}  // namespace opass::sim
