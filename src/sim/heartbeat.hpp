// HDFS-style failure detection and recovery.
//
// DataNodes heartbeat the NameNode host every few seconds; when a node
// misses enough consecutive beats (because it crashed), the NameNode
// declares it dead and re-replicates every block it held — closing the loop
// between the runtime failure model (Cluster::fail_node) and the metadata
// layer (NameNode::decommission_node). Heartbeats are real simulated
// messages, so a congested NameNode link delays detection exactly as it
// would in production.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "sim/cluster.hpp"

namespace opass::sim {

/// Heartbeat cadence and detection thresholds.
struct HeartbeatParams {
  Seconds interval = 3.0;            ///< beat period (HDFS default: 3 s)
  std::uint32_t miss_threshold = 3;  ///< consecutive misses before declaring dead
  Bytes heartbeat_bytes = 128;       ///< wire size of one beat
};

/// Periodic heartbeat + miss detection + automatic re-replication.
class HeartbeatMonitor {
 public:
  using Params = HeartbeatParams;

  /// `namenode_host` is the node the beats travel to (the metadata server).
  HeartbeatMonitor(Cluster& cluster, dfs::NameNode& nn, dfs::NodeId namenode_host, Rng& rng,
                   HeartbeatParams params = {});

  /// Schedule heartbeats and miss checks from now until `horizon` (virtual
  /// time). The simulation still quiesces at the horizon, so run() keeps
  /// its run-to-idle semantics.
  void start(Seconds horizon);

  /// True once the monitor declared the node dead and re-replicated it.
  bool declared_dead(dfs::NodeId node) const;

  /// Virtual time the node was declared dead, or a negative value if alive.
  Seconds detection_time(dfs::NodeId node) const;

  /// Number of nodes declared dead and recovered so far.
  std::uint32_t recoveries() const { return recoveries_; }

 private:
  void schedule_beat(dfs::NodeId node, Seconds when, Seconds horizon);
  void schedule_check(Seconds when, Seconds horizon);

  Cluster& cluster_;
  dfs::NameNode& nn_;
  dfs::NodeId namenode_host_;
  Rng& rng_;
  HeartbeatParams params_;
  std::vector<Seconds> last_beat_;
  std::vector<Seconds> declared_at_;  // < 0 while alive
  std::uint32_t recoveries_ = 0;
};

}  // namespace opass::sim
