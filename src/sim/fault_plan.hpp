// Deterministic fault-injection and churn: scripted virtual-time events
// driven through heartbeat detection and traffic-modelled recovery.
//
// A FaultPlan is a list of timestamped events — node crash, slow-node
// (straggler) rate degradation and restoration, node join, graceful
// decommission, rebalance — loaded from a small JSON file (--fault-plan) or
// built in code. The FaultInjector arms the plan on a Cluster + NameNode +
// HeartbeatMonitor triple:
//
//   * crash      -> Cluster::fail_node; the heartbeat monitor detects the
//                   silence and hands the node to the injector, which
//                   re-replicates every chunk the node held as *real
//                   simulated copies* (source disk + NICs + destination
//                   disk) that compete with application reads for bandwidth;
//   * slow/restore -> Cluster::degrade_node / restore_node (active
//                   transfers re-level at the event time);
//   * join       -> NameNode::add_node + Cluster::add_node + heartbeat
//                   watch; new nodes absorb re-replication and rebalance
//                   traffic;
//   * decommission -> graceful drain: the node keeps serving while its
//                   chunks are copied away, then leaves (safe at r = 1,
//                   unlike a crash, which loses r = 1 chunks);
//   * rebalance  -> the HDFS balancer's move plan (most- to least-loaded,
//                   deterministic ties) executed as traffic.
//
// Determinism (DESIGN.md §11). Every recovery decision is a deterministic
// function of the metadata at the decision point: work lists are processed
// in ascending chunk id, copy sources are the smallest-id alive replica
// holder, copy targets the least-loaded alive node (ties by smallest id),
// and concurrent copies are bounded by a FIFO of plan order. No RNG is
// drawn, so a seeded run with a fault plan replays byte-identically.
//
// Thread-safety: single-threaded, like the rest of the simulator — all
// members are confined to the simulation thread (see
// common/thread_annotations.hpp for the vocabulary used once state is
// shared across threads).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "dfs/namenode.hpp"
#include "dfs/types.hpp"
#include "sim/cluster.hpp"
#include "sim/heartbeat.hpp"

namespace opass::sim {

/// Scripted event taxonomy (DESIGN.md §11 documents the full model).
enum class FaultKind {
  kCrash,         ///< fail-stop: node dies, its reads abort, heartbeats cease
  kSlow,          ///< straggler: disk + NIC capacities scaled by `factor`
  kRestore,       ///< undo kSlow: node back to full speed
  kJoin,          ///< churn: an empty node joins on `rack`
  kDecommission,  ///< graceful drain: copy chunks away, then leave
  kRebalance,     ///< run the balancer's move plan as real traffic
};

/// "crash" | "slow" | ... — stable names used by the JSON format.
const char* fault_kind_name(FaultKind kind);

/// Parse a kind name; unknown names throw with the offending string and the
/// accepted set (same contract as core::parse_planner_kind).
FaultKind parse_fault_kind(const std::string& name);

/// One scripted event. Which fields are meaningful depends on `kind`:
/// node (crash/slow/restore/decommission), factor (slow), rack (join),
/// tolerance (rebalance).
struct FaultEvent {
  Seconds at = 0;
  FaultKind kind = FaultKind::kCrash;
  dfs::NodeId node = dfs::kInvalidNode;
  double factor = 1.0;
  dfs::RackId rack = 0;
  std::uint32_t tolerance = 1;
};

/// A full scripted scenario.
struct FaultPlan {
  /// Heartbeat/monitoring horizon: beats and miss checks run until here.
  Seconds horizon = 120.0;
  /// Re-replication / rebalance copy streams in flight at once (the HDFS
  /// dfs.namenode.replication.max-streams analogue).
  std::uint32_t max_concurrent_copies = 4;
  std::vector<FaultEvent> events;
};

/// Parse the JSON fault-plan format:
///
///   {"horizon": 120.0, "max_concurrent_copies": 4, "events": [
///     {"at": 3.0,  "kind": "crash", "node": 17},
///     {"at": 5.0,  "kind": "slow", "node": 4, "factor": 0.25},
///     {"at": 40.0, "kind": "restore", "node": 4},
///     {"at": 10.0, "kind": "join", "rack": 0},
///     {"at": 12.0, "kind": "rebalance", "tolerance": 1},
///     {"at": 20.0, "kind": "decommission", "node": 9}]}
///
/// Malformed input throws std::invalid_argument naming the offending field
/// ("fault plan event 1: missing field \"node\" ..."). Node ids are range-
/// checked against the cluster at FaultInjector::arm(), not here.
FaultPlan parse_fault_plan(const std::string& json_text);

/// Read `path` and parse_fault_plan its contents.
FaultPlan load_fault_plan(const std::string& path);

/// Fault-lifecycle observer. The injector stays metric-blind (DESIGN.md §8):
/// it reports transitions; obs::FaultEventLog turns them into trace events
/// and metrics. Callbacks fire after the injector's own accounting updated.
class FaultProbe {
 public:
  virtual ~FaultProbe() = default;

  /// A scripted event was applied at `now` (for kCrash this is injection
  /// time; detection is reported separately).
  virtual void on_fault(Seconds now, const FaultEvent& event) = 0;

  /// The heartbeat monitor declared `node` dead and recovery began.
  virtual void on_detection(Seconds now, dfs::NodeId node) = 0;

  /// One re-replication/rebalance copy of `bytes` for `chunk` landed on
  /// `dst` (sourced from `src`).
  virtual void on_copy(Seconds now, dfs::ChunkId chunk, dfs::NodeId src, dfs::NodeId dst,
                       Bytes bytes) = 0;

  /// A recovery drive (crash re-replication, drain, or rebalance) finished
  /// its last copy. `node` is the recovered/drained node, or kInvalidNode
  /// for a rebalance.
  virtual void on_recovery_complete(Seconds now, dfs::NodeId node) = 0;
};

/// Counters accumulated over an armed plan.
struct FaultStats {
  std::uint32_t crashes = 0;
  std::uint32_t slowdowns = 0;
  std::uint32_t restores = 0;
  std::uint32_t joins = 0;
  std::uint32_t decommissions = 0;
  std::uint32_t rebalances = 0;
  std::uint32_t recoveries = 0;       ///< recovery drives completed
  std::uint32_t replicas_copied = 0;  ///< copies that landed
  Bytes rereplicated_bytes = 0;       ///< bytes those copies moved
  std::uint32_t lost_chunks = 0;      ///< crash left a chunk with no replica
  std::uint32_t aborted_copies = 0;   ///< copies dropped/retried (source died,
                                      ///< or metadata moved underneath them)
};

/// Membership/layout transitions the scheduler layer may react to
/// (exp::run_dynamic re-plans the Opass guideline on these).
enum class MembershipEvent {
  kNodeDead,          ///< detection: `node` was declared dead
  kNodeJoined,        ///< `node` joined the cluster
  kRecoveryComplete,  ///< crash re-replication for `node` finished
  kDrainComplete,     ///< graceful decommission of `node` finished
  kRebalanceComplete, ///< a rebalance drive finished (node = kInvalidNode)
};

/// Arms a FaultPlan: schedules the scripted events and drives deterministic,
/// traffic-modelled recovery. Construct after the monitor, then call arm()
/// exactly once, before Cluster::run(). The injector installs itself as the
/// monitor's recovery handler.
class FaultInjector {
 public:
  using MembershipCallback =
      std::function<void(Seconds, MembershipEvent, dfs::NodeId)>;

  /// Preconditions: `monitor` not started yet or started with the same
  /// horizon; every event node id < cluster.node_count() at its event time
  /// (join events extend the valid range in plan order).
  FaultInjector(Cluster& cluster, dfs::NameNode& nn, HeartbeatMonitor& monitor,
                FaultPlan plan);

  /// Schedule every event and install the recovery handler. Call once.
  void arm();

  /// Attach (or with nullptr, detach) a fault probe. Borrowed; must outlive
  /// the injector or be detached first.
  void set_probe(FaultProbe* probe) { probe_ = probe; }

  /// Register a membership-change callback (borrowed semantics: the callee
  /// must stay valid for the simulation). Runs inside the event loop.
  void set_membership_callback(MembershipCallback cb) { membership_ = std::move(cb); }

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  /// One queued copy: move `bytes` of `chunk` from `src` to `dst`. When
  /// `remove_from` != kInvalidNode the copy is a *move* (drain/rebalance):
  /// the source replica is unregistered after the copy lands.
  struct Copy {
    dfs::ChunkId chunk = 0;
    dfs::NodeId src = dfs::kInvalidNode;
    dfs::NodeId dst = dfs::kInvalidNode;
    dfs::NodeId remove_from = dfs::kInvalidNode;
    Bytes bytes = 0;
    std::uint32_t drive = 0;  ///< index into drives_
  };

  /// One recovery operation (crash recovery, drain, rebalance) whose
  /// completion is announced when its last pending copy resolves.
  struct Drive {
    dfs::NodeId node = dfs::kInvalidNode;  // kInvalidNode for rebalance
    MembershipEvent done_event = MembershipEvent::kRecoveryComplete;
    std::uint32_t pending = 0;
  };

  void apply(Seconds now, const FaultEvent& event);
  void on_declared(dfs::NodeId node, Seconds now);
  void start_drain(Seconds now, dfs::NodeId node);
  void start_rebalance(Seconds now, std::uint32_t tolerance);
  void enqueue(Copy copy);
  void pump(Seconds now);
  void finish_copy(Seconds now, const Copy& copy, bool landed);
  dfs::NodeId pick_target(dfs::ChunkId chunk) const;
  dfs::NodeId pick_source(dfs::ChunkId chunk) const;
  bool node_usable(dfs::NodeId node) const;

  Cluster& cluster_;
  dfs::NameNode& nn_;
  HeartbeatMonitor& monitor_;
  FaultPlan plan_;
  FaultProbe* probe_ = nullptr;
  MembershipCallback membership_;
  FaultStats stats_;
  std::deque<Copy> queue_;
  std::vector<Drive> drives_;
  std::uint32_t active_copies_ = 0;
  /// Chunk -> pending copy target, so two drives never race one chunk to
  /// the same destination. Parallel arrays sorted by chunk id.
  std::vector<dfs::ChunkId> pending_chunks_;
  std::vector<dfs::NodeId> pending_targets_;
  bool armed_ = false;
};

}  // namespace opass::sim
