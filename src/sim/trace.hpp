// Execution traces: one record per chunk-read operation, mirroring the
// instrumentation the paper used ("we record the I/O time taken to read each
// chunk file" and "a monitor to record the amount of data served by each
// storage node").
//
// The recorder is the ground truth every observability surface derives from:
// the figure series below, the obs::MetricsRegistry collectors
// (obs/collect.hpp), the Chrome trace-event exporter (obs/chrome_trace.hpp)
// and the per-node hotspot report (obs/hotspot.hpp) all reduce the same
// ReadRecord vector. Records are appended in completion order by the
// executor; because the simulator is deterministic under a fixed seed, the
// record sequence — and therefore everything derived from it — replays
// byte-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dfs/types.hpp"

namespace opass::sim {

/// One completed read operation: who asked, who served, how much, and when.
/// `issue_time`/`end_time` are virtual (simulated) seconds from the cluster
/// clock; `io_time()` is the paper's per-chunk "I/O time" (request to last
/// byte, including positioning latency and any admission-queue wait).
struct ReadRecord {
  std::uint32_t process = 0;      ///< issuing process rank
  dfs::NodeId reader_node = 0;    ///< node the process runs on
  dfs::NodeId serving_node = 0;   ///< node that served the data
  dfs::ChunkId chunk = 0;         ///< chunk that was read
  /// Task the read fed (runtime::TaskId; UINT32_MAX when the issuer is not
  /// task-structured). Lets the causal span log nest reads under their task
  /// without guessing from time windows (which prefetch overlap would break).
  std::uint32_t task = 0xffffffffu;
  Bytes bytes = 0;                ///< payload size of the read
  Seconds issue_time = 0;         ///< when the request was issued
  Seconds end_time = 0;           ///< when the last byte arrived
  bool local = false;             ///< served from the reader's own node

  /// Wall-clock (virtual) duration of the operation.
  Seconds io_time() const { return end_time - issue_time; }
};

/// Collects ReadRecords and derives the per-figure series. Append-only;
/// derivations are pure functions of the record vector, so the recorder can
/// be reduced repeatedly (and by several exporters) without interference.
class TraceRecorder {
 public:
  /// Append one completed read. Records arrive in completion order.
  void add(const ReadRecord& r) { records_.push_back(r); }

  /// All records, in the order they were added.
  const std::vector<ReadRecord>& records() const { return records_; }

  /// Number of recorded reads.
  std::size_t size() const { return records_.size(); }

  /// Drop all records (e.g. between epochs of an iterative run).
  void clear() { records_.clear(); }

  /// Per-op I/O times in completion order (Fig. 7(c) / 9 / 11 / 12 series).
  std::vector<double> io_times() const;

  /// Per-op I/O times ordered by issue time.
  std::vector<double> io_times_by_issue() const;

  /// Bytes served by each node (Fig. 1(a) / 8 / 10 series) — the paper's
  /// serve-imbalance signal. `node_count` sizes the result; every record
  /// must reference a node below it.
  std::vector<Bytes> bytes_served_per_node(std::uint32_t node_count) const;

  /// Chunk-request count served by each node.
  std::vector<std::uint32_t> ops_served_per_node(std::uint32_t node_count) const;

  /// Fraction of operations served locally, in [0, 1]; 0 when empty.
  double local_fraction() const;

  /// Completion time of the last operation (parallel makespan).
  Seconds makespan() const;

 private:
  std::vector<ReadRecord> records_;
};

}  // namespace opass::sim
