// Execution traces: one record per chunk-read operation, mirroring the
// instrumentation the paper used ("we record the I/O time taken to read each
// chunk file" and "a monitor to record the amount of data served by each
// storage node").
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dfs/types.hpp"

namespace opass::sim {

/// One completed read operation.
struct ReadRecord {
  std::uint32_t process = 0;      ///< issuing process rank
  dfs::NodeId reader_node = 0;    ///< node the process runs on
  dfs::NodeId serving_node = 0;   ///< node that served the data
  dfs::ChunkId chunk = 0;
  Bytes bytes = 0;
  Seconds issue_time = 0;         ///< when the request was issued
  Seconds end_time = 0;           ///< when the last byte arrived
  bool local = false;

  Seconds io_time() const { return end_time - issue_time; }
};

/// Collects ReadRecords and derives the per-figure series.
class TraceRecorder {
 public:
  void add(const ReadRecord& r) { records_.push_back(r); }
  const std::vector<ReadRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Per-op I/O times in completion order (Fig. 7(c) / 9 / 11 / 12 series).
  std::vector<double> io_times() const;

  /// Per-op I/O times ordered by issue time.
  std::vector<double> io_times_by_issue() const;

  /// Bytes served by each node (Fig. 1(a) / 8 / 10 series).
  std::vector<Bytes> bytes_served_per_node(std::uint32_t node_count) const;

  /// Chunk-request count served by each node.
  std::vector<std::uint32_t> ops_served_per_node(std::uint32_t node_count) const;

  /// Fraction of operations served locally, in [0, 1].
  double local_fraction() const;

  /// Completion time of the last operation (parallel makespan).
  Seconds makespan() const;

 private:
  std::vector<ReadRecord> records_;
};

}  // namespace opass::sim
