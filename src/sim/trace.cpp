#include "sim/trace.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace opass::sim {

std::vector<double> TraceRecorder::io_times() const {
  std::vector<const ReadRecord*> ordered;
  ordered.reserve(records_.size());
  for (const auto& r : records_) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ReadRecord* a, const ReadRecord* b) {
                     return a->end_time < b->end_time;
                   });
  std::vector<double> out;
  out.reserve(ordered.size());
  for (const auto* r : ordered) out.push_back(r->io_time());
  return out;
}

std::vector<double> TraceRecorder::io_times_by_issue() const {
  std::vector<const ReadRecord*> ordered;
  ordered.reserve(records_.size());
  for (const auto& r : records_) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ReadRecord* a, const ReadRecord* b) {
                     return a->issue_time < b->issue_time;
                   });
  std::vector<double> out;
  out.reserve(ordered.size());
  for (const auto* r : ordered) out.push_back(r->io_time());
  return out;
}

std::vector<Bytes> TraceRecorder::bytes_served_per_node(std::uint32_t node_count) const {
  std::vector<Bytes> out(node_count, 0);
  for (const auto& r : records_) {
    OPASS_REQUIRE(r.serving_node < node_count, "record references node out of range");
    out[r.serving_node] += r.bytes;
  }
  return out;
}

std::vector<std::uint32_t> TraceRecorder::ops_served_per_node(std::uint32_t node_count) const {
  std::vector<std::uint32_t> out(node_count, 0);
  for (const auto& r : records_) {
    OPASS_REQUIRE(r.serving_node < node_count, "record references node out of range");
    ++out[r.serving_node];
  }
  return out;
}

double TraceRecorder::local_fraction() const {
  if (records_.empty()) return 0.0;
  std::size_t local = 0;
  for (const auto& r : records_)
    if (r.local) ++local;
  return static_cast<double>(local) / static_cast<double>(records_.size());
}

Seconds TraceRecorder::makespan() const {
  Seconds end = 0;
  for (const auto& r : records_) end = std::max(end, r.end_time);
  return end;
}

}  // namespace opass::sim
