#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/require.hpp"

namespace opass::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kRestore:
      return "restore";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kDecommission:
      return "decommission";
    case FaultKind::kRebalance:
      return "rebalance";
  }
  return "?";
}

namespace {

constexpr const char* kKindSet = "(crash | slow | restore | join | decommission | rebalance)";

bool kind_from_name(const std::string& name, FaultKind& out) {
  for (FaultKind k : {FaultKind::kCrash, FaultKind::kSlow, FaultKind::kRestore,
                      FaultKind::kJoin, FaultKind::kDecommission, FaultKind::kRebalance}) {
    if (name == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

FaultKind parse_fault_kind(const std::string& name) {
  FaultKind kind;
  OPASS_REQUIRE(kind_from_name(name, kind),
                "unknown fault kind \"" + name + "\" " + kKindSet);
  return kind;
}

namespace {

/// Minimal JSON-subset reader for the fault-plan schema: objects, arrays,
/// strings, numbers. Schema-driven (no generic value tree) so every error
/// can name the offending field — the contract the CLI relies on.
struct Cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }
  bool at(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  bool eat(char c) {
    if (!at(c)) return false;
    ++i;
    return true;
  }
};

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  OPASS_REQUIRE(false, where + ": " + msg);
  std::abort();  // unreachable; OPASS_REQUIRE(false, ...) always throws
}

std::string parse_json_string(Cursor& c, const std::string& where) {
  if (!c.eat('"')) fail(where, "expected a string");
  std::string out;
  while (c.i < c.s.size() && c.s[c.i] != '"') {
    if (c.s[c.i] == '\\') fail(where, "escape sequences are not supported");
    out.push_back(c.s[c.i++]);
  }
  if (!c.eat('"')) fail(where, "unterminated string");
  return out;
}

double parse_json_number(Cursor& c, const std::string& where, const std::string& field) {
  c.skip_ws();
  const char* begin = c.s.c_str() + c.i;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) fail(where, "field \"" + field + "\" must be a number");
  c.i += static_cast<std::size_t>(end - begin);
  return v;
}

std::uint32_t as_index(double v, const std::string& where, const std::string& field) {
  if (v < 0 || v != std::floor(v) || v > static_cast<double>(UINT32_MAX))
    fail(where, "field \"" + field + "\" must be a non-negative integer");
  return static_cast<std::uint32_t>(v);
}

FaultEvent parse_event(Cursor& c, std::size_t index) {
  const std::string where = "fault plan event " + std::to_string(index);
  if (!c.eat('{')) fail(where, "expected an object");
  FaultEvent ev;
  bool have_at = false, have_kind = false, have_node = false, have_factor = false;
  if (!c.at('}')) {
    do {
      const std::string key = parse_json_string(c, where);
      if (!c.eat(':')) fail(where, "expected ':' after field \"" + key + "\"");
      if (key == "at") {
        ev.at = parse_json_number(c, where, key);
        if (ev.at < 0) fail(where, "field \"at\" must be >= 0");
        have_at = true;
      } else if (key == "kind") {
        const std::string name = parse_json_string(c, where);
        if (!kind_from_name(name, ev.kind))
          fail(where, "unknown kind \"" + name + "\" " + kKindSet);
        have_kind = true;
      } else if (key == "node") {
        ev.node = as_index(parse_json_number(c, where, key), where, key);
        have_node = true;
      } else if (key == "factor") {
        ev.factor = parse_json_number(c, where, key);
        if (!(ev.factor > 0 && ev.factor <= 1.0))
          fail(where, "field \"factor\" must be in (0, 1]");
        have_factor = true;
      } else if (key == "rack") {
        ev.rack = as_index(parse_json_number(c, where, key), where, key);
      } else if (key == "tolerance") {
        ev.tolerance = as_index(parse_json_number(c, where, key), where, key);
      } else {
        fail(where, "unknown field \"" + key +
                        "\" (at | kind | node | factor | rack | tolerance)");
      }
    } while (c.eat(','));
  }
  if (!c.eat('}')) fail(where, "expected '}' to close the event object");

  if (!have_at) fail(where, "missing field \"at\"");
  if (!have_kind) fail(where, "missing field \"kind\"");
  const bool needs_node = ev.kind == FaultKind::kCrash || ev.kind == FaultKind::kSlow ||
                          ev.kind == FaultKind::kRestore ||
                          ev.kind == FaultKind::kDecommission;
  if (needs_node && !have_node)
    fail(where, "missing field \"node\" (required for kind \"" +
                    std::string(fault_kind_name(ev.kind)) + "\")");
  if (ev.kind == FaultKind::kSlow && !have_factor)
    fail(where, "missing field \"factor\" (required for kind \"slow\")");
  return ev;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& json_text) {
  const std::string where = "fault plan";
  Cursor c{json_text};
  if (!c.eat('{')) fail(where, "expected a top-level JSON object");
  FaultPlan plan;
  if (!c.at('}')) {
    do {
      const std::string key = parse_json_string(c, where);
      if (!c.eat(':')) fail(where, "expected ':' after field \"" + key + "\"");
      if (key == "horizon") {
        plan.horizon = parse_json_number(c, where, key);
        if (!(plan.horizon > 0)) fail(where, "field \"horizon\" must be positive");
      } else if (key == "max_concurrent_copies") {
        plan.max_concurrent_copies = as_index(parse_json_number(c, where, key), where, key);
        if (plan.max_concurrent_copies == 0)
          fail(where, "field \"max_concurrent_copies\" must be >= 1");
      } else if (key == "events") {
        if (!c.eat('[')) fail(where, "field \"events\" must be an array");
        if (!c.at(']')) {
          do {
            plan.events.push_back(parse_event(c, plan.events.size()));
          } while (c.eat(','));
        }
        if (!c.eat(']')) fail(where, "expected ']' to close the events array");
      } else {
        fail(where,
             "unknown field \"" + key + "\" (horizon | max_concurrent_copies | events)");
      }
    } while (c.eat(','));
  }
  if (!c.eat('}')) fail(where, "expected '}' to close the top-level object");
  c.skip_ws();
  if (c.i != json_text.size()) fail(where, "trailing characters after the top-level object");

  for (const FaultEvent& ev : plan.events)
    if (ev.at > plan.horizon)
      fail(where, "event at t=" + std::to_string(ev.at) + " lies beyond the horizon");
  return plan;
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OPASS_REQUIRE(in.good(), "cannot read fault plan file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_fault_plan(text.str());
}

// --- injector ---------------------------------------------------------------

FaultInjector::FaultInjector(Cluster& cluster, dfs::NameNode& nn, HeartbeatMonitor& monitor,
                             FaultPlan plan)
    : cluster_(cluster), nn_(nn), monitor_(monitor), plan_(std::move(plan)) {}

void FaultInjector::arm() {
  OPASS_REQUIRE(!armed_, "fault plan already armed");
  armed_ = true;
  monitor_.set_recovery_handler(
      [this](dfs::NodeId node, Seconds now) { on_declared(node, now); });

  // Range-check node references against the membership at each event's
  // position in the plan (joins extend the valid range in plan order).
  std::uint32_t known = cluster_.node_count();
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kJoin) {
      ++known;
    } else if (ev.kind != FaultKind::kRebalance) {
      OPASS_REQUIRE(ev.node < known, "fault plan event references node " +
                                         std::to_string(ev.node) +
                                         " outside the cluster");
    }
  }

  for (const FaultEvent& ev : plan_.events)
    cluster_.simulator().at(ev.at, [this, ev](Seconds now) { apply(now, ev); });
}

bool FaultInjector::node_usable(dfs::NodeId node) const {
  return !cluster_.is_failed(node) && !nn_.is_decommissioned(node);
}

void FaultInjector::apply(Seconds now, const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      ++stats_.crashes;
      cluster_.fail_node(event.node, now);
      break;
    case FaultKind::kSlow:
      ++stats_.slowdowns;
      cluster_.degrade_node(event.node, event.factor);
      break;
    case FaultKind::kRestore:
      ++stats_.restores;
      cluster_.restore_node(event.node);
      break;
    case FaultKind::kJoin: {
      ++stats_.joins;
      const dfs::NodeId id = nn_.add_node(event.rack);
      const dfs::NodeId cid = cluster_.add_node(event.rack);
      OPASS_CHECK(id == cid, "NameNode and cluster disagree on the joined node's id");
      monitor_.watch_node(id, plan_.horizon);
      if (membership_) membership_(now, MembershipEvent::kNodeJoined, id);
      break;
    }
    case FaultKind::kDecommission:
      ++stats_.decommissions;
      start_drain(now, event.node);
      break;
    case FaultKind::kRebalance:
      ++stats_.rebalances;
      start_rebalance(now, event.tolerance);
      break;
  }
  if (probe_ != nullptr) probe_->on_fault(now, event);
}

dfs::NodeId FaultInjector::pick_source(dfs::ChunkId chunk) const {
  dfs::NodeId best = dfs::kInvalidNode;
  for (dfs::NodeId n : nn_.locations(chunk)) {
    if (cluster_.is_failed(n)) continue;  // draining nodes still serve
    if (best == dfs::kInvalidNode || n < best) best = n;
  }
  return best;
}

dfs::NodeId FaultInjector::pick_target(dfs::ChunkId chunk) const {
  // Least loaded by (current replicas + pending inbound copies), smallest id
  // on ties — the deterministic reassignment-ordering rule of DESIGN.md §11.
  dfs::NodeId best = dfs::kInvalidNode;
  std::size_t best_load = 0;
  for (dfs::NodeId n = 0; n < cluster_.node_count(); ++n) {
    if (!node_usable(n)) continue;
    if (nn_.chunk(chunk).has_replica_on(n)) continue;
    std::size_t load = nn_.chunks_on_node(n).size();
    for (std::size_t i = 0; i < pending_targets_.size(); ++i)
      if (pending_targets_[i] == n) ++load;
    if (best == dfs::kInvalidNode || load < best_load) {
      best = n;
      best_load = load;
    }
  }
  return best;
}

void FaultInjector::on_declared(dfs::NodeId node, Seconds now) {
  if (probe_ != nullptr) probe_->on_detection(now, node);
  if (membership_) membership_(now, MembershipEvent::kNodeDead, node);

  // Crash recovery: drop the dead node's replicas from the metadata, then
  // re-create each one with a real copy. Ascending chunk order, bounded
  // concurrency — deterministic regardless of detection interleaving.
  const std::vector<dfs::ChunkId> affected = nn_.detach_node(node);
  const std::uint32_t drive = static_cast<std::uint32_t>(drives_.size());
  drives_.push_back({node, MembershipEvent::kRecoveryComplete, 0});
  for (dfs::ChunkId c : affected) {
    const dfs::NodeId src = pick_source(c);
    if (src == dfs::kInvalidNode) {
      ++stats_.lost_chunks;  // r = 1 crash: the chunk is gone
      continue;
    }
    const dfs::NodeId dst = pick_target(c);
    if (dst == dfs::kInvalidNode) {
      ++stats_.lost_chunks;  // nowhere to put it (tiny or dying cluster)
      continue;
    }
    ++drives_.back().pending;
    enqueue({c, src, dst, dfs::kInvalidNode, nn_.chunk(c).size, drive});
  }
  if (drives_.back().pending == 0) {
    ++stats_.recoveries;
    if (probe_ != nullptr) probe_->on_recovery_complete(now, node);
    if (membership_) membership_(now, MembershipEvent::kRecoveryComplete, node);
  }
  pump(now);
}

void FaultInjector::start_drain(Seconds now, dfs::NodeId node) {
  OPASS_REQUIRE(!cluster_.is_failed(node), "cannot drain a failed node");
  nn_.mark_decommissioned(node);
  std::vector<dfs::ChunkId> chunks = nn_.chunks_on_node(node);
  std::sort(chunks.begin(), chunks.end());
  const std::uint32_t drive = static_cast<std::uint32_t>(drives_.size());
  drives_.push_back({node, MembershipEvent::kDrainComplete, 0});
  for (dfs::ChunkId c : chunks) {
    const dfs::NodeId dst = pick_target(c);
    if (dst == dfs::kInvalidNode) continue;  // nowhere to move it; keep serving
    ++drives_.back().pending;
    // The draining node itself sources the copy and gives the replica up
    // only once the copy landed — safe at replication 1.
    enqueue({c, node, dst, node, nn_.chunk(c).size, drive});
  }
  if (drives_.back().pending == 0) {
    if (probe_ != nullptr) probe_->on_recovery_complete(now, node);
    if (membership_) membership_(now, MembershipEvent::kDrainComplete, node);
  }
  pump(now);
}

void FaultInjector::start_rebalance(Seconds now, std::uint32_t tolerance) {
  // Plan the full move list against a scratch copy of the metadata (the
  // HDFS balancer's most- to least-loaded rule with deterministic ties),
  // then execute it as traffic. Metadata commits as each copy lands.
  std::vector<std::vector<dfs::ChunkId>> inv(cluster_.node_count());
  std::vector<std::vector<dfs::NodeId>> replicas;
  replicas.reserve(nn_.chunk_count());
  for (dfs::ChunkId c = 0; c < nn_.chunk_count(); ++c) replicas.push_back(nn_.locations(c));
  for (dfs::NodeId n = 0; n < cluster_.node_count(); ++n) {
    inv[n] = nn_.chunks_on_node(n);
    std::sort(inv[n].begin(), inv[n].end());
  }

  const std::uint32_t drive = static_cast<std::uint32_t>(drives_.size());
  drives_.push_back({dfs::kInvalidNode, MembershipEvent::kRebalanceComplete, 0});
  for (;;) {
    dfs::NodeId hi = dfs::kInvalidNode, lo = dfs::kInvalidNode;
    for (dfs::NodeId n = 0; n < cluster_.node_count(); ++n) {
      if (!node_usable(n)) continue;
      if (hi == dfs::kInvalidNode || inv[n].size() > inv[hi].size()) hi = n;
      if (lo == dfs::kInvalidNode || inv[n].size() < inv[lo].size()) lo = n;
    }
    if (hi == dfs::kInvalidNode || lo == dfs::kInvalidNode) break;
    if (inv[hi].size() <= inv[lo].size() + tolerance) break;

    // Smallest movable chunk id on hi that lo lacks.
    dfs::ChunkId moved = dfs::kInvalidNode;
    for (dfs::ChunkId c : inv[hi]) {
      const auto& reps = replicas[c];
      if (std::find(reps.begin(), reps.end(), lo) == reps.end()) {
        moved = c;
        break;
      }
    }
    if (moved == dfs::kInvalidNode) break;

    auto& hi_inv = inv[hi];
    hi_inv.erase(std::find(hi_inv.begin(), hi_inv.end(), moved));
    auto& lo_inv = inv[lo];
    lo_inv.insert(std::lower_bound(lo_inv.begin(), lo_inv.end(), moved), moved);
    auto& reps = replicas[moved];
    *std::find(reps.begin(), reps.end(), hi) = lo;

    ++drives_.back().pending;
    enqueue({moved, hi, lo, hi, nn_.chunk(moved).size, drive});
  }
  if (drives_.back().pending == 0) {
    if (probe_ != nullptr) probe_->on_recovery_complete(now, dfs::kInvalidNode);
    if (membership_) membership_(now, MembershipEvent::kRebalanceComplete, dfs::kInvalidNode);
  }
  pump(now);
}

void FaultInjector::enqueue(Copy copy) {
  pending_chunks_.push_back(copy.chunk);
  pending_targets_.push_back(copy.dst);
  queue_.push_back(copy);
}

void FaultInjector::pump(Seconds now) {
  while (active_copies_ < plan_.max_concurrent_copies && !queue_.empty()) {
    Copy copy = queue_.front();
    queue_.pop_front();

    // Re-validate at start time: metadata (or membership) may have moved
    // since the copy was planned.
    if (!node_usable(copy.dst) || nn_.chunk(copy.chunk).has_replica_on(copy.dst)) {
      finish_copy(now, copy, /*landed=*/false);
      continue;
    }
    if (cluster_.is_failed(copy.src)) {
      const dfs::NodeId src = pick_source(copy.chunk);
      if (src == dfs::kInvalidNode) {
        ++stats_.lost_chunks;
        finish_copy(now, copy, /*landed=*/false);
        continue;
      }
      ++stats_.aborted_copies;
      copy.src = src;
      if (copy.remove_from == copy.src) copy.remove_from = dfs::kInvalidNode;
    }

    ++active_copies_;
    cluster_.replicate(
        copy.src, copy.dst, copy.bytes,
        [this, copy](Seconds end) {
          --active_copies_;
          finish_copy(end, copy, /*landed=*/true);
          pump(end);
        },
        [this, copy](Seconds end) {
          // Source died mid-copy: retry from another replica holder.
          --active_copies_;
          ++stats_.aborted_copies;
          queue_.push_front(copy);
          pump(end);
        });
  }
}

void FaultInjector::finish_copy(Seconds now, const Copy& copy, bool landed) {
  // Drop the pending-target marker (first matching entry).
  for (std::size_t i = 0; i < pending_chunks_.size(); ++i) {
    if (pending_chunks_[i] == copy.chunk && pending_targets_[i] == copy.dst) {
      pending_chunks_.erase(pending_chunks_.begin() + static_cast<std::ptrdiff_t>(i));
      pending_targets_.erase(pending_targets_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }

  if (landed) {
    nn_.register_replica(copy.chunk, copy.dst);
    if (copy.remove_from != dfs::kInvalidNode &&
        nn_.chunk(copy.chunk).has_replica_on(copy.remove_from))
      nn_.unregister_replica(copy.chunk, copy.remove_from);
    ++stats_.replicas_copied;
    stats_.rereplicated_bytes += copy.bytes;
    if (probe_ != nullptr) probe_->on_copy(now, copy.chunk, copy.src, copy.dst, copy.bytes);
  } else {
    ++stats_.aborted_copies;
  }

  Drive& drive = drives_[copy.drive];
  OPASS_CHECK(drive.pending > 0, "recovery drive copy count underflow");
  if (--drive.pending == 0) {
    if (drive.done_event == MembershipEvent::kRecoveryComplete) ++stats_.recoveries;
    if (probe_ != nullptr) probe_->on_recovery_complete(now, drive.node);
    if (membership_) membership_(now, drive.done_event, drive.node);
  }
}

}  // namespace opass::sim
