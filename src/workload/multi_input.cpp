#include "workload/multi_input.hpp"

#include "common/require.hpp"
#include "common/str.hpp"

namespace opass::workload {

std::vector<runtime::Task> make_multi_input_workload(dfs::NameNode& nn,
                                                     std::uint32_t task_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     const MultiInputSpec& spec) {
  OPASS_REQUIRE(task_count > 0, "need at least one task");
  OPASS_REQUIRE(!spec.input_sizes.empty(), "tasks need at least one input");
  for (Bytes s : spec.input_sizes)
    OPASS_REQUIRE(s > 0 && s <= nn.chunk_size(),
                  "each multi-input file must fit in one chunk");

  std::vector<runtime::Task> tasks(task_count);
  for (std::uint32_t i = 0; i < task_count; ++i) {
    tasks[i].id = i;
    tasks[i].compute_time = spec.compute_time;
  }
  for (std::size_t k = 0; k < spec.input_sizes.size(); ++k) {
    for (std::uint32_t i = 0; i < task_count; ++i) {
      const dfs::FileId fid = nn.create_file(strfmt("set%zu/part%u", k, i),
                                             spec.input_sizes[k], policy, rng);
      const auto& chunks = nn.file(fid).chunks;
      OPASS_CHECK(chunks.size() == 1, "multi-input file should be a single chunk");
      tasks[i].inputs.push_back(chunks[0]);
    }
  }
  return tasks;
}

}  // namespace opass::workload
