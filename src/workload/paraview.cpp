#include "workload/paraview.hpp"

#include "common/require.hpp"
#include "common/str.hpp"

namespace opass::workload {

ParaViewWorkload make_paraview_workload(dfs::NameNode& nn, dfs::PlacementPolicy& policy,
                                        Rng& rng, const ParaViewSpec& spec) {
  OPASS_REQUIRE(spec.dataset_count > 0, "series must contain datasets");
  OPASS_REQUIRE(spec.datasets_per_step > 0 &&
                    spec.datasets_per_step <= spec.dataset_count,
                "datasets per step must be in [1, dataset_count]");
  OPASS_REQUIRE(spec.bytes_per_dataset > 0 && spec.bytes_per_dataset <= nn.chunk_size(),
                "each dataset must fit in one chunk (VTK XML subfiles are sub-chunk)");

  ParaViewWorkload w;
  w.series.reserve(spec.dataset_count);
  w.tasks.reserve(spec.dataset_count);
  for (std::uint32_t i = 0; i < spec.dataset_count; ++i) {
    const dfs::FileId fid =
        nn.create_file(strfmt("multiblock/sub%04u.vtm", i), spec.bytes_per_dataset, policy, rng);
    w.series.push_back(fid);
    const auto& chunks = nn.file(fid).chunks;
    OPASS_CHECK(chunks.size() == 1, "dataset should be a single chunk");
    runtime::Task t;
    t.id = i;
    t.inputs = {chunks[0]};
    t.compute_time = spec.render_time_per_task;
    w.tasks.push_back(std::move(t));
  }

  // Rendering steps cover the series in order, `datasets_per_step` at a time
  // (the paper renders 64-dataset time steps until the 640-op trace ends).
  for (std::uint32_t start = 0; start < spec.dataset_count; start += spec.datasets_per_step) {
    std::vector<runtime::TaskId> step;
    for (std::uint32_t i = start;
         i < std::min(start + spec.datasets_per_step, spec.dataset_count); ++i)
      step.push_back(i);
    w.steps.push_back(std::move(step));
  }
  return w;
}

}  // namespace opass::workload
