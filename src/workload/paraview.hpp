// ParaView MultiBlock workload (paper Section V-B).
//
// The paper's test set: 640 VTK datasets (duplicated Protein Data Bank
// macromolecular data), ~26 GB total, read through vtkFileSeriesReader in
// rendering steps of 64 datasets (~3.8 GB, ~56 MB per read call). Opass is
// hooked into vtkXMLCompositeDataReader::ReadXMLData(), which assigns data
// pieces to data-server processes after the meta-file is parsed.
//
// We model: a meta-file listing `dataset_count` single-chunk files of
// ~`bytes_per_dataset`; a sequence of rendering steps, each reading
// `datasets_per_step` consecutive datasets and then rendering (a compute
// phase). Steps are synchronized — exactly the data-server pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "runtime/task.hpp"

namespace opass::workload {

/// Shape of the ParaView run.
struct ParaViewSpec {
  std::uint32_t dataset_count = 640;      ///< files listed in the meta-file
  std::uint32_t datasets_per_step = 64;   ///< read per rendering step
  Bytes bytes_per_dataset = 56 * kMiB;    ///< ~56 MB per vtkFileSeriesReader call
  Seconds render_time_per_task = 0.5;     ///< post-read pipeline/render work
};

/// The stored series plus per-step task lists.
struct ParaViewWorkload {
  std::vector<dfs::FileId> series;          ///< the MultiBlock file series
  std::vector<runtime::Task> tasks;         ///< one task per dataset read
  std::vector<std::vector<runtime::TaskId>> steps;  ///< task ids per rendering step
};

/// Store the series in the DFS and build the step structure.
ParaViewWorkload make_paraview_workload(dfs::NameNode& nn, dfs::PlacementPolicy& policy,
                                        Rng& rng, const ParaViewSpec& spec = {});

}  // namespace opass::workload
