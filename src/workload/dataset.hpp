// Dataset construction helpers for the paper's experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "runtime/task.hpp"

namespace opass::workload {

/// Store one dataset of `chunk_count` full-size chunks under `name` using the
/// given placement policy. Returns the file id.
dfs::FileId store_chunked_dataset(dfs::NameNode& nn, const std::string& name,
                                  std::uint32_t chunk_count, dfs::PlacementPolicy& policy,
                                  Rng& rng);

/// The paper's single-data micro-benchmark dataset: ~`chunks_per_process`
/// full-size chunks per process on an m-node cluster ("approximately ten
/// chunk files for every process"). Returns one single-input task per chunk.
std::vector<runtime::Task> make_single_data_workload(dfs::NameNode& nn,
                                                     std::uint32_t chunk_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     Seconds compute_time = 0);

/// Skewed hot-file popularity (the failure/churn scenarios' read mix).
struct SkewedWorkloadParams {
  std::uint32_t file_count = 8;       ///< distinct datasets, "hot/0".."hot/N-1"
  std::uint32_t chunks_per_file = 16; ///< full-size chunks per dataset
  std::uint32_t task_count = 256;     ///< total read tasks to emit
  /// Zipf popularity exponent: file i carries weight 1/(i+1)^s, so s = 0 is
  /// uniform and s >= 1 concentrates most reads on the first few files.
  double zipf_s = 1.0;
  Seconds compute_time = 0;
};

/// Store `file_count` chunked datasets and emit `task_count` single-input
/// tasks whose per-file counts follow a Zipf(s) popularity law (largest-
/// remainder apportionment, ties to the smaller file index — deterministic;
/// no RNG beyond placement). Task k of file i reads that file's chunk
/// (k mod chunks_per_file), so hot files turn into hot chunks — the access
/// pattern that makes crashes and stragglers on replica-heavy nodes hurt.
std::vector<runtime::Task> make_skewed_workload(dfs::NameNode& nn,
                                                const SkewedWorkloadParams& params,
                                                dfs::PlacementPolicy& policy, Rng& rng);

}  // namespace opass::workload
