// Dataset construction helpers for the paper's experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "runtime/task.hpp"

namespace opass::workload {

/// Store one dataset of `chunk_count` full-size chunks under `name` using the
/// given placement policy. Returns the file id.
dfs::FileId store_chunked_dataset(dfs::NameNode& nn, const std::string& name,
                                  std::uint32_t chunk_count, dfs::PlacementPolicy& policy,
                                  Rng& rng);

/// The paper's single-data micro-benchmark dataset: ~`chunks_per_process`
/// full-size chunks per process on an m-node cluster ("approximately ten
/// chunk files for every process"). Returns one single-input task per chunk.
std::vector<runtime::Task> make_single_data_workload(dfs::NameNode& nn,
                                                     std::uint32_t chunk_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     Seconds compute_time = 0);

}  // namespace opass::workload
