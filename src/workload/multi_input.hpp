// Multi-data access workload (paper Section V-A2).
//
// "Each task includes three inputs, one 30 MB data input, one 20 MB input,
// and one 10 MB input. These three inputs belong to three different data
// sets." Each input is a sub-chunk-size file, hence exactly one chunk, and
// the three inputs of a task are placed independently — which is what makes
// perfect locality impossible and Algorithm 1 necessary.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "runtime/task.hpp"

namespace opass::workload {

/// Sizes of the per-task inputs, defaulting to the paper's 30/20/10 MB.
struct MultiInputSpec {
  std::vector<Bytes> input_sizes = {30 * kMiB, 20 * kMiB, 10 * kMiB};
  Seconds compute_time = 0;
};

/// Create `task_count` tasks; input k of task i is file i of dataset k.
std::vector<runtime::Task> make_multi_input_workload(dfs::NameNode& nn,
                                                     std::uint32_t task_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     const MultiInputSpec& spec = {});

}  // namespace opass::workload
