#include "workload/genomics.hpp"

#include "common/require.hpp"
#include "workload/dataset.hpp"

namespace opass::workload {

std::vector<runtime::Task> make_genomics_workload(dfs::NameNode& nn,
                                                  dfs::PlacementPolicy& policy, Rng& rng,
                                                  const GenomicsSpec& spec) {
  OPASS_REQUIRE(spec.partition_count > 0, "database needs partitions");
  OPASS_REQUIRE(spec.mean_compute_time >= 0, "compute time must be non-negative");
  OPASS_REQUIRE(spec.pareto_shape > 1.0, "Pareto shape must exceed 1 for a finite mean");

  const dfs::FileId fid =
      store_chunked_dataset(nn, "genedb", spec.partition_count, policy, rng);
  auto tasks = runtime::single_input_tasks(nn, {fid});

  // Pareto with mean = xm * alpha / (alpha - 1); solve for xm given the
  // requested mean.
  const double alpha = spec.pareto_shape;
  const double xm = spec.mean_compute_time * (alpha - 1.0) / alpha;
  for (auto& t : tasks) {
    t.compute_time = spec.mean_compute_time > 0 ? rng.pareto(xm, alpha) : 0.0;
  }
  return tasks;
}

}  // namespace opass::workload
