#include "workload/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace opass::workload {

dfs::FileId store_chunked_dataset(dfs::NameNode& nn, const std::string& name,
                                  std::uint32_t chunk_count, dfs::PlacementPolicy& policy,
                                  Rng& rng) {
  OPASS_REQUIRE(chunk_count > 0, "dataset needs at least one chunk");
  return nn.create_file(name, static_cast<Bytes>(chunk_count) * nn.chunk_size(), policy, rng);
}

std::vector<runtime::Task> make_single_data_workload(dfs::NameNode& nn,
                                                     std::uint32_t chunk_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     Seconds compute_time) {
  const dfs::FileId fid = store_chunked_dataset(nn, "dataset", chunk_count, policy, rng);
  return runtime::single_input_tasks(nn, {fid}, compute_time);
}

std::vector<runtime::Task> make_skewed_workload(dfs::NameNode& nn,
                                                const SkewedWorkloadParams& params,
                                                dfs::PlacementPolicy& policy, Rng& rng) {
  OPASS_REQUIRE(params.file_count > 0, "skewed workload needs at least one file");
  OPASS_REQUIRE(params.chunks_per_file > 0, "skewed workload needs chunks per file");
  OPASS_REQUIRE(params.task_count > 0, "skewed workload needs at least one task");
  OPASS_REQUIRE(params.zipf_s >= 0, "zipf exponent must be non-negative");

  std::vector<dfs::FileId> files;
  files.reserve(params.file_count);
  for (std::uint32_t i = 0; i < params.file_count; ++i)
    files.push_back(store_chunked_dataset(nn, "hot/" + std::to_string(i),
                                          params.chunks_per_file, policy, rng));

  // Largest-remainder apportionment of task_count over Zipf weights.
  std::vector<double> weight(params.file_count);
  double total = 0;
  for (std::uint32_t i = 0; i < params.file_count; ++i) {
    weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), params.zipf_s);
    total += weight[i];
  }
  std::vector<std::uint32_t> tasks_for(params.file_count);
  std::vector<std::pair<double, std::uint32_t>> remainder(params.file_count);
  std::uint32_t assigned = 0;
  for (std::uint32_t i = 0; i < params.file_count; ++i) {
    const double quota = params.task_count * weight[i] / total;
    tasks_for[i] = static_cast<std::uint32_t>(quota);
    assigned += tasks_for[i];
    remainder[i] = {quota - static_cast<double>(tasks_for[i]), i};
  }
  std::sort(remainder.begin(), remainder.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::uint32_t i = 0; assigned < params.task_count; ++i, ++assigned)
    ++tasks_for[remainder[i % params.file_count].second];

  std::vector<runtime::Task> tasks;
  tasks.reserve(params.task_count);
  for (std::uint32_t i = 0; i < params.file_count; ++i) {
    const auto& chunks = nn.file(files[i]).chunks;
    for (std::uint32_t k = 0; k < tasks_for[i]; ++k) {
      runtime::Task t;
      t.id = static_cast<runtime::TaskId>(tasks.size());
      t.inputs = {chunks[k % params.chunks_per_file]};
      t.compute_time = params.compute_time;
      tasks.push_back(std::move(t));
    }
  }
  OPASS_CHECK(tasks.size() == params.task_count, "skewed apportionment lost tasks");
  return tasks;
}

}  // namespace opass::workload
