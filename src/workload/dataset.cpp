#include "workload/dataset.hpp"

#include "common/require.hpp"

namespace opass::workload {

dfs::FileId store_chunked_dataset(dfs::NameNode& nn, const std::string& name,
                                  std::uint32_t chunk_count, dfs::PlacementPolicy& policy,
                                  Rng& rng) {
  OPASS_REQUIRE(chunk_count > 0, "dataset needs at least one chunk");
  return nn.create_file(name, static_cast<Bytes>(chunk_count) * nn.chunk_size(), policy, rng);
}

std::vector<runtime::Task> make_single_data_workload(dfs::NameNode& nn,
                                                     std::uint32_t chunk_count,
                                                     dfs::PlacementPolicy& policy, Rng& rng,
                                                     Seconds compute_time) {
  const dfs::FileId fid = store_chunked_dataset(nn, "dataset", chunk_count, policy, rng);
  return runtime::single_input_tasks(nn, {fid}, compute_time);
}

}  // namespace opass::workload
