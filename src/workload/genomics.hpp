// Genomics (mpiBLAST-like) workload for dynamic data access (paper
// Sections IV-D and V-A3).
//
// A gene database is partitioned into chunk files; comparison tasks have
// execution times that "vary greatly and are difficult to predict according
// to the input data", which we model with heavy-tailed (Pareto) compute
// times. A master process dispatches tasks to idle slaves — the default
// baseline dispatches in random order, Opass uses the Section IV-D scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dfs/namenode.hpp"
#include "runtime/task.hpp"

namespace opass::workload {

/// Shape of the gene-comparison run.
struct GenomicsSpec {
  std::uint32_t partition_count = 640;  ///< database chunk files
  double mean_compute_time = 0.4;       ///< seconds per comparison task
  double pareto_shape = 1.8;            ///< tail heaviness (smaller = heavier)
};

/// Store the partitioned database and create one task per partition with a
/// heavy-tailed compute time.
std::vector<runtime::Task> make_genomics_workload(dfs::NameNode& nn,
                                                  dfs::PlacementPolicy& policy, Rng& rng,
                                                  const GenomicsSpec& spec = {});

}  // namespace opass::workload
