// Attribution aggregates and critical-path analysis over the causal span log
// (obs/spans.hpp; DESIGN.md §13).
//
// Two reductions of the same exact-tiling data:
//
//  - attribute_spans(): where did the time go, summed over top-level spans
//    only (children's slices are already folded into their parents' tilings,
//    so counting both would double-charge). Per AttrKind bucket and per
//    blamed node, in integer ticks — the sums reconcile bit-exactly with the
//    span durations they tile.
//
//  - critical_path(): the longest chain of causally dependent spans that
//    explains the makespan. The walk runs backward from the last-finishing
//    task span; a predecessor is either the same process's previous task
//    (chained exactly, end == start), or — at a BSP wave boundary — the task
//    on *another* process whose completion released the wave (its end equals
//    this start exactly, because release_wave runs synchronously from the
//    last arriver's completion). Steps chain gap-free, so the path's blame
//    totals sum exactly to the makespan they explain.
//
// Both render through SpanDocBuilder into schema-versioned JSON with
// integer-tick arithmetic only — byte-identical across thread counts and
// replays, which is what lets tools/span_diff.py explain a makespan
// regression as an attribution delta.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/spans.hpp"

namespace opass::obs {

/// Integer-tick attribution sums: per causal bucket, per blamed node, and
/// the total span time they decompose.
struct AttributionTotals {
  std::array<std::int64_t, kAttrKindCount> kind_ticks{};  ///< by AttrKind
  std::vector<std::int64_t> node_ticks;  ///< by blamed node (sized node_count)
  std::int64_t total_ticks = 0;          ///< sum of attributed span durations

  void add_slice(const AttrSlice& slice);
  void add_span(const Span& span);  ///< slices, or kOther when untiled
};

/// Sum the breakdowns of every *top-level* span (parent == kNoSpan) in `log`.
/// kind_ticks sums to total_ticks exactly (untiled spans charge kOther).
AttributionTotals attribute_spans(const SpanLog& log, std::uint32_t node_count);

/// The longest dependent chain of task spans explaining the makespan.
struct CriticalPath {
  /// One step: a task span on the path, or (span == kNoSpan) a synthetic
  /// idle gap between two chained spans of the same process. Steps chain
  /// exactly: each step's end is the next step's start.
  struct Step {
    std::uint32_t span = kNoSpan;
    std::int64_t start_ticks = 0;
    std::int64_t end_ticks = 0;
  };
  std::vector<Step> steps;  ///< in time order, last ends at the makespan
  /// Blame: the path spans' breakdowns summed (idle steps charge kOther).
  /// blame.total_ticks == the path's covered time, exactly.
  AttributionTotals blame;
};

/// Walk the critical path of `log`'s task spans (empty path when there are
/// none). Deterministic: every tie breaks on (process, span id).
CriticalPath critical_path(const SpanLog& log, std::uint32_t node_count);

/// Renders span logs into the two span artifacts (--spans-out and
/// --critical-path): schema-versioned JSON documents and a human-readable
/// critical-path summary. Methods render in add order; names follow the
/// report convention ([a-z0-9_]+). All numbers are integer ticks (or exact
/// tick-derived percentages via obs::format_double), so output is
/// byte-deterministic.
class SpanDocBuilder {
 public:
  /// Add one method's span log (borrowed; must outlive the builder).
  void add_method(const std::string& name, const SpanLog& log,
                  std::uint32_t node_count);

  /// {"schema": 1, "ticks_per_second": ..., "methods": [{name, makespan,
  /// attribution, spans: [...]}]} — the full span log with breakdowns.
  std::string spans_json() const;

  /// Same framing, but per method the critical path: its steps and its blame
  /// totals.
  std::string critical_path_json() const;

  /// Human-readable critical-path summary (one block per method): makespan,
  /// blame percentages in descending order, top blamed nodes, step count.
  std::string critical_path_text() const;

  /// Computed critical path of method `index` (add order) — for the Chrome
  /// trace flow overlay.
  const CriticalPath& path(std::size_t index) const;

  std::size_t method_count() const { return methods_.size(); }

 private:
  struct Method {
    std::string name;
    const SpanLog* log;
    std::uint32_t node_count;
    AttributionTotals totals;
    CriticalPath path;
  };
  std::vector<Method> methods_;
};

/// Overlay `cp` on a Chrome trace: for each consecutive pair of task steps
/// that hops between processes, emit an 's' flow event at the source span's
/// end and an 'f' event at the destination span's start (same flow id), so
/// the viewer draws the wave-release arrows the critical path followed.
/// Flow ids are sequential from 1 in path order — deterministic.
void add_critical_path_flows(ChromeTraceBuilder& trace, const SpanLog& log,
                             const CriticalPath& cp, std::uint32_t pid);

}  // namespace opass::obs
