#include "obs/collect.hpp"

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace opass::obs {

const std::vector<double>& io_time_bounds() {
  static const std::vector<double> bounds = {0.25, 0.5, 1, 2, 4, 8, 16, 32};
  return bounds;
}

void collect_execution(MetricsRegistry& registry, const runtime::ExecutionResult& result,
                       std::uint32_t node_count, const std::string& prefix) {
  OPASS_REQUIRE(node_count > 0, "collector needs at least one node");
  registry.gauge_set(prefix + ".makespan_s", result.makespan);
  registry.counter_add(prefix + ".tasks_executed", result.tasks_executed);
  registry.counter_add(prefix + ".read_failures", result.read_failures);

  std::uint64_t reads_total = 0;
  std::uint64_t reads_local = 0;
  Bytes bytes_total = 0;
  Bytes bytes_local = 0;
  std::vector<Bytes> node_bytes(node_count, 0);
  std::vector<std::uint64_t> node_ops(node_count, 0);
  const std::string hist = prefix + ".io_time_s";
  registry.define_histogram(hist, io_time_bounds());
  for (const sim::ReadRecord& r : result.trace.records()) {
    OPASS_REQUIRE(r.serving_node < node_count, "record references a node out of range");
    ++reads_total;
    bytes_total += r.bytes;
    if (r.local) {
      ++reads_local;
      bytes_local += r.bytes;
    }
    node_bytes[r.serving_node] += r.bytes;
    ++node_ops[r.serving_node];
    registry.observe(hist, r.io_time());
  }
  registry.counter_add(prefix + ".reads_total", reads_total);
  registry.counter_add(prefix + ".reads_local", reads_local);
  registry.counter_add(prefix + ".bytes_total", bytes_total);
  registry.counter_add(prefix + ".bytes_local", bytes_local);
  registry.counter_add(prefix + ".bytes_remote", bytes_total - bytes_local);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const std::string node = prefix + ".node." + std::to_string(n);
    registry.counter_add(node + ".bytes_served", node_bytes[n]);
    registry.counter_add(node + ".ops_served", node_ops[n]);
  }
  for (std::size_t p = 0; p < result.process_finish_time.size(); ++p) {
    const std::string proc = prefix + ".process." + std::to_string(p);
    registry.gauge_set(proc + ".finish_s", result.process_finish_time[p]);
    if (p < result.barrier_stall.size())
      registry.gauge_set(proc + ".stall_s", result.barrier_stall[p]);
  }
}

void collect_cluster(MetricsRegistry& registry, const sim::Cluster& cluster,
                     const std::string& prefix) {
  // Engine-level scalability gauges: slot pools are reused, so slot counts
  // track peak concurrency (bounded by processes x inputs in flight), not the
  // total number of flows/reads ever started; the recompute counters expose
  // how much re-leveling work the incremental max-min engine actually did.
  const sim::FlowSimulator& s = cluster.simulator();
  registry.gauge_set(prefix + ".sim.flow_slots", static_cast<double>(s.flow_slot_count()));
  registry.gauge_set(prefix + ".sim.peak_active_flows",
                     static_cast<double>(s.peak_active_flows()));
  registry.gauge_set(prefix + ".sim.read_slots", static_cast<double>(cluster.read_slot_count()));
  registry.counter_add(prefix + ".sim.rate_recomputes", s.rate_recomputes());
  registry.counter_add(prefix + ".sim.rate_recompute_touched_flows",
                       s.rate_recompute_touched_flows());
  registry.gauge_set(prefix + ".sim.max_relevel_component",
                     static_cast<double>(s.max_relevel_component()));
  registry.counter_add(prefix + ".sim.eta_stale_pops", s.eta_stale_pops());
  for (std::uint32_t n = 0; n < cluster.node_count(); ++n) {
    const std::string node = prefix + ".node." + std::to_string(n);
    registry.gauge_set(node + ".disk_busy_s", cluster.disk_busy_time(n));
    registry.gauge_set(node + ".disk_peak_load",
                       static_cast<double>(cluster.disk_peak_load(n)));
    registry.counter_add(node + ".disk_degraded_joins", cluster.disk_degraded_joins(n));
    registry.counter_add(node + ".admission_waits", cluster.admission_waits(n));
    registry.gauge_set(node + ".admission_queue_peak",
                       static_cast<double>(cluster.peak_admission_queue(n)));
  }
}

void collect_plan(MetricsRegistry& registry, const core::PlanResult& plan,
                  const std::string& prefix) {
  registry.counter_add(prefix + ".locally_matched", plan.locally_matched);
  registry.counter_add(prefix + ".randomly_filled", plan.randomly_filled);
  registry.counter_add(prefix + ".rack_local", plan.rack_local);
  registry.counter_add(prefix + ".reassignments", plan.reassignments);
  registry.counter_add(prefix + ".matched_bytes", plan.matched_bytes);
  registry.counter_add(prefix + ".total_bytes", plan.stats.total_bytes);
  registry.counter_add(prefix + ".local_bytes", plan.stats.local_bytes);
  registry.gauge_set(prefix + ".local_fraction", plan.local_fraction());
  registry.gauge_set(prefix + ".plan_wall_ms", plan.plan_wall_ms,
                     Determinism::kWallClock);
  registry.gauge_set(prefix + ".stats_wall_ms", plan.stats_wall_ms,
                     Determinism::kWallClock);
}

void collect_dynamic(MetricsRegistry& registry, const core::OpassDynamicSource& source,
                     const std::string& prefix) {
  registry.counter_add(prefix + ".guideline_hits", source.guideline_hits());
  registry.counter_add(prefix + ".steals", source.steal_count());
  registry.counter_add(prefix + ".steal_local_hits", source.steal_local_hits());
  registry.gauge_set(prefix + ".steal_local_hit_rate",
                     source.steal_count()
                         ? static_cast<double>(source.steal_local_hits()) /
                               static_cast<double>(source.steal_count())
                         : 0.0);
}

void collect_service(MetricsRegistry& registry, const core::PlannerService& service,
                     const std::string& prefix) {
  const core::ServiceCounters& c = service.counters();
  registry.counter_add(prefix + ".jobs_submitted", c.jobs_submitted);
  registry.counter_add(prefix + ".jobs_planned", c.jobs_planned);
  registry.counter_add(prefix + ".jobs_cancelled", c.jobs_cancelled);
  registry.counter_add(prefix + ".jobs_completed", c.jobs_completed);
  registry.counter_add(prefix + ".tasks_planned", c.tasks_planned);
  registry.counter_add(prefix + ".locally_matched", c.locally_matched);
  registry.counter_add(prefix + ".randomly_filled", c.randomly_filled);
  registry.counter_add(prefix + ".batches", c.batches);
  registry.gauge_set(prefix + ".max_batch_tasks", c.max_batch_tasks);
  registry.gauge_set(prefix + ".max_queue_depth", c.max_queue_depth);
  registry.gauge_set(prefix + ".local_match_fraction",
                     c.tasks_planned ? static_cast<double>(c.locally_matched) /
                                           static_cast<double>(c.tasks_planned)
                                     : 0.0);
  const core::TenantAccounts& accounts = service.tenants();
  for (core::TenantId tenant : accounts.tenants()) {
    const std::string t = prefix + ".tenant." + std::to_string(tenant);
    registry.counter_add(t + ".charged_bytes", accounts.charged(tenant));
    registry.gauge_set(t + ".weight", accounts.weight(tenant));
    registry.gauge_set(t + ".normalized_usage", accounts.normalized_usage(tenant));
  }
}

void collect_thread_pool(MetricsRegistry& registry, const ThreadPool& pool,
                         const std::string& prefix) {
  registry.gauge_set(prefix + ".threads", static_cast<double>(pool.thread_count()),
                     Determinism::kWallClock);
  registry.gauge_set(prefix + ".batches", static_cast<double>(pool.batches()),
                     Determinism::kWallClock);
  registry.gauge_set(prefix + ".chunks_executed",
                     static_cast<double>(pool.chunks_executed()), Determinism::kWallClock);
  for (std::uint32_t lane = 0; lane < pool.thread_count(); ++lane) {
    const std::string l = prefix + ".lane." + std::to_string(lane);
    registry.gauge_set(l + ".busy_ms", pool.lane_busy_ms(lane), Determinism::kWallClock);
    registry.gauge_set(l + ".chunks", static_cast<double>(pool.lane_chunks(lane)),
                       Determinism::kWallClock);
  }
}

}  // namespace opass::obs
