// Deterministic virtual-time sampler: fixed-interval time series driven by
// the simulator clock.
//
// The end-state aggregates of obs/collect.hpp answer "how imbalanced was the
// run"; the paper's Section III analysis needs "how did the imbalance
// *evolve*" — which nodes served how fast at which point of the run, where
// the queue depth collapsed to a straggler tail. TimelineRecorder captures
// that: named series sampled at fixed virtual-time boundaries, updated from
// instrumentation probes on the measured subsystems.
//
// Sampling model. Virtual time is partitioned into intervals of `interval`
// seconds; sample k is stamped at boundary t_k = k * interval. Callers feed
// state transitions through record_level()/record_rate(); every record first
// emits all boundaries up to the event time (levels repeat their current
// value, rate accumulators convert to per-second averages and reset), then
// applies the update. An event landing *exactly* on a boundary is therefore
// excluded from that boundary's sample and charged to the next interval —
// the convention tests/obs/timeline_test.cpp pins. finish(end) flushes the
// trailing boundaries; when `end` falls strictly inside an interval the
// remainder is emitted as one partial sample scaled by its true duration
// (partial_duration()). An `end` landing exactly on a boundary produces no
// partial sample; instead the final boundary is restamped with the end state
// (rates fold the trailing accumulation in, levels take their final value),
// so run-final events are never dropped.
//
// Determinism & cost. Samples are pure functions of the (deterministic)
// event sequence — no wall clock anywhere — so a seeded run reproduces every
// series byte-identically. Each series stores its samples in a bounded
// ring buffer: the buffer grows geometrically up to `capacity` and then
// wraps, overwriting the oldest ticks (counted by dropped_ticks()); once
// warm, recording is allocation-free, which keeps the sim hot path clean.
//
// Naming. Every series name must follow the `timeline.<subsystem>.<metric>`
// taxonomy (lowercase [a-z0-9_] segments, at least three); registration
// enforces it (OPASS_REQUIRE) and tools/opass_lint.py's timeline-metric-name
// rule checks the literals statically.
//
// The analytics pass over finished series lives in obs/analytics.hpp; the
// HTML/JSON renderers in obs/report.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "opass/service.hpp"
#include "runtime/executor.hpp"
#include "sim/cluster.hpp"

namespace opass::obs {

/// How a series turns state transitions into samples.
enum class SeriesKind {
  kLevel,  ///< piecewise-constant value; sampled as-is at each boundary
  kRate,   ///< per-interval accumulation, emitted as amount per second
};

/// Canonical lowercase name ("level", "rate").
const char* series_kind_name(SeriesKind kind);

/// True iff `name` follows the `timeline.<subsystem>.<metric>` taxonomy:
/// at least three dot-separated segments of [a-z0-9_]+ (first = "timeline").
bool valid_timeline_series_name(const std::string& name);

/// Fixed-interval virtual-time sampler (see file comment for the model).
class TimelineRecorder {
 public:
  using SeriesId = std::uint32_t;

  struct Options {
    Seconds interval = 0.5;        ///< sampling period in virtual seconds
    std::size_t capacity = 8192;   ///< max retained ticks per series (ring)
  };

  TimelineRecorder();  ///< default Options
  explicit TimelineRecorder(Options options);

  /// Register a piecewise-constant series starting at `initial`. Names must
  /// pass valid_timeline_series_name() and be unique.
  SeriesId add_level_series(const std::string& name, double initial = 0);

  /// Register a per-interval accumulation series (emitted as amount/second).
  SeriesId add_rate_series(const std::string& name);

  /// Set a level series to `value` as of virtual time `now` (>= last event).
  void record_level(SeriesId id, Seconds now, double value);

  /// Add `delta` to a level series as of `now`.
  void record_delta(SeriesId id, Seconds now, double delta);

  /// Accumulate `amount` into a rate series' current interval as of `now`.
  void record_rate(SeriesId id, Seconds now, double amount);

  /// Emit every boundary <= `now` (idempotent; record_* call it themselves).
  void advance_to(Seconds now);

  /// Flush the run end: emits boundaries <= `end`, then one partial sample
  /// for the open remainder when `end` is strictly inside an interval.
  /// Recording past finish() is an error; finish() twice is an error.
  void finish(Seconds end);

  Seconds interval() const { return interval_; }
  bool finished() const { return finished_; }
  Seconds end_time() const { return end_time_; }

  /// Duration of the trailing partial sample; 0 when the run ended exactly
  /// on a boundary (or finish() has not run).
  Seconds partial_duration() const { return partial_duration_; }

  std::size_t series_count() const { return series_.size(); }
  const std::string& series_name(SeriesId id) const;
  SeriesKind series_kind(SeriesId id) const;

  /// Samples of one series in tick order, oldest retained tick first,
  /// including the trailing partial sample (if any). Materializes out of the
  /// ring — export-path only.
  std::vector<double> series_values(SeriesId id) const;

  /// Boundary samples emitted so far (identical across series; the partial
  /// sample is not counted).
  std::uint64_t tick_count() const { return next_tick_; }

  /// Oldest tick still retained (> 0 once the ring wrapped).
  std::uint64_t first_retained_tick() const;

  /// Ticks overwritten by ring wrap-around, summed over the run.
  std::uint64_t dropped_ticks() const;

 private:
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kLevel;
    double level = 0;              // current value (kLevel)
    double accum = 0;              // current interval's accumulation (kRate)
    double partial = 0;            // trailing partial sample, valid when
                                   // partial_duration_ > 0
    std::vector<double> ring;      // tick t lives at ring[t % capacity_]
  };

  void emit_tick(Seconds tick_start, Seconds duration);
  Series& checked(SeriesId id);

  Seconds interval_ = 0.5;
  std::size_t capacity_ = 8192;
  std::vector<Series> series_;
  std::uint64_t next_tick_ = 0;    // next boundary index to emit
  bool finished_ = false;
  Seconds end_time_ = 0;
  Seconds partial_duration_ = 0;
};

// --- subsystem probes -------------------------------------------------------
//
// The measured subsystems stay metric-blind (DESIGN.md §8): sim::Cluster and
// runtime's executor expose tiny abstract probe interfaces, and the adapters
// below translate probe callbacks into timeline series. exp::ExperimentConfig
// wires them per run via RunTimeline.

/// Cluster-side adapter: per-node serve rate and in-flight reads, plus
/// cluster-wide serve rate, in-flight, read-slot and bytes-remaining series.
class ClusterTimelineProbe final : public sim::ClusterProbe {
 public:
  ClusterTimelineProbe(TimelineRecorder& recorder, const sim::Cluster& cluster);

  /// Grow the `timeline.cluster.bytes_remaining` level by the bytes the run
  /// is about to read (call before the reads are issued).
  void add_expected_bytes(Seconds now, Bytes bytes);

  void on_read_issued(Seconds now, dfs::NodeId server, Bytes bytes) override;
  void on_read_finished(Seconds now, dfs::NodeId server, Bytes bytes,
                        bool completed) override;

 private:
  TimelineRecorder& recorder_;
  const sim::Cluster& cluster_;
  std::vector<TimelineRecorder::SeriesId> node_rate_, node_inflight_;
  TimelineRecorder::SeriesId total_rate_, total_inflight_, read_slots_,
      bytes_remaining_;
  std::uint32_t inflight_total_ = 0;
  double remaining_ = 0;
};

/// Executor-side adapter: per-process operation depth (in-flight reads +
/// compute) and the cluster-wide queue depth, stamped on every transition.
class ExecutorTimelineProbe final : public runtime::ExecutorProbe {
 public:
  ExecutorTimelineProbe(TimelineRecorder& recorder, std::uint32_t process_count);

  void on_process_depth(Seconds now, runtime::ProcessId process,
                        std::uint32_t depth) override;

 private:
  TimelineRecorder& recorder_;
  std::vector<TimelineRecorder::SeriesId> process_depth_;
  TimelineRecorder::SeriesId queue_depth_;
  std::vector<std::uint32_t> depth_;
  std::uint32_t total_depth_ = 0;
};

/// Planning-service adapter: queue depth, batch shape, planned/local task
/// rates, and per-tenant cumulative locally-assigned bytes. The recorder
/// requires every series before the first sample, so the tenant id space
/// must be declared up front: tenant ids must be dense in [0, tenant_count).
class ServiceTimelineProbe final : public core::ServiceProbe {
 public:
  ServiceTimelineProbe(TimelineRecorder& recorder, std::uint32_t tenant_count);

  void on_job_queued(Seconds now, const core::JobStatus& job,
                     std::uint32_t queue_depth) override;
  void on_job_cancelled(Seconds now, const core::JobStatus& job,
                        std::uint32_t queue_depth) override;
  void on_batch_planned(const core::BatchReport& report) override;

 private:
  TimelineRecorder& recorder_;
  TimelineRecorder::SeriesId queue_depth_, batch_jobs_, batch_tasks_,
      planned_rate_, local_rate_;
  std::vector<TimelineRecorder::SeriesId> tenant_bytes_;
  std::vector<double> tenant_level_;
};

/// One-stop wiring for a run: attaches a ClusterTimelineProbe to the cluster
/// and owns an ExecutorTimelineProbe for the executor config. All methods are
/// no-ops when `recorder` is null, so call sites stay branch-free. Detaches
/// the cluster probe on destruction.
class RunTimeline {
 public:
  RunTimeline(TimelineRecorder* recorder, sim::Cluster& cluster,
              std::uint32_t process_count);
  ~RunTimeline();

  RunTimeline(const RunTimeline&) = delete;
  RunTimeline& operator=(const RunTimeline&) = delete;

  /// Probe pointer for ExecutorConfig::probe (null when disabled).
  runtime::ExecutorProbe* executor_probe();

  /// Forwarded to ClusterTimelineProbe::add_expected_bytes.
  void add_expected_bytes(Bytes bytes);

  /// Flush the recorder at the cluster's current virtual time.
  void finish();

 private:
  TimelineRecorder* recorder_;
  sim::Cluster& cluster_;
  // Engaged only when recorder_ != nullptr.
  std::unique_ptr<ClusterTimelineProbe> cluster_probe_;
  std::unique_ptr<ExecutorTimelineProbe> executor_probe_;
};

}  // namespace opass::obs
