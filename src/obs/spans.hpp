// Causal span log (DESIGN.md §13): virtual-time spans for every task, read
// and service job, where read spans carry a *bottleneck attribution
// breakdown* — which constraint (source disk, source NIC, destination NIC,
// rack uplink, stream cap, slow node) the flow simulator's max-min
// water-filling pinned the transfer's rate at, interval by interval. This is
// the paper's causal story made machine-checkable: not just "node 7 served
// 8 chunks" but "task 42's read was disk-bound on node 7 for 3.1 s of its
// 3.8 s".
//
// Exactness contract: all span arithmetic happens on integer nanosecond
// ticks (sim::to_ticks). A span's breakdown slices chain — each slice closes
// exactly where the next opens, the first opens at the span's start and the
// last closes at its end — so slice durations sum *bit-exactly* to the span
// duration (SpanLog::add enforces this; the spans_reconcile tests and the
// run_span_check ctest gate it end to end). Because the underlying doubles
// are byte-identical across thread counts and replays (DESIGN.md §12), the
// span log and everything derived from it (obs/attribution.hpp) exports
// byte-identically too.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "opass/planner.hpp"
#include "runtime/executor.hpp"
#include "sim/cluster.hpp"

namespace opass::obs {

/// What a span measures. Task/read spans come from executions, queue/plan
/// spans from the planning service, wait spans from inter-task gaps (BSP
/// barriers, dynamic-source retry waits).
enum class SpanKind : std::uint8_t { kTask, kRead, kWait, kQueue, kPlan };
const char* span_kind_name(SpanKind kind);

/// Causal buckets a span's time decomposes into. The transfer buckets mirror
/// the paper's contention taxonomy (Fig. 3/4: hot disks and NICs), plus the
/// admission/positioning phases and the scheduling-side buckets.
enum class AttrKind : std::uint8_t {
  kQueueWait,     ///< admission FIFO (xceiver gate) or service queue wait
  kSeek,          ///< positioning latency phase of a read
  kSrcDisk,       ///< serving node's disk bound the transfer rate
  kSrcNic,        ///< serving node's egress NIC bound it
  kDstNic,        ///< reader's ingress NIC bound it
  kRackUplink,    ///< source rack's shared uplink bound it
  kRackDownlink,  ///< destination rack's shared downlink bound it
  kStreamCap,     ///< the single-stream protocol cap bound it
  kDegraded,      ///< binding resource's owner node was running slow
  kCompute,       ///< task compute phase
  kBarrier,       ///< parked at a BSP barrier
  kOther,         ///< unattributed (retry windows, prefetch overlap, idle)
};
inline constexpr std::size_t kAttrKindCount = 12;
const char* attr_kind_name(AttrKind kind);

/// Sentinel ids for span fields that do not apply.
inline constexpr std::uint32_t kNoSpan = UINT32_MAX;
inline constexpr std::uint32_t kNoTask = UINT32_MAX;

/// One attributed slice of a span: over [start_ticks, end_ticks) its time is
/// charged to `kind`, blamed on `node` (the serving node for src buckets,
/// the reader for kDstNic; dfs::kInvalidNode when no node is to blame).
struct AttrSlice {
  AttrKind kind = AttrKind::kOther;
  dfs::NodeId node = dfs::kInvalidNode;
  std::int64_t start_ticks = 0;
  std::int64_t end_ticks = 0;

  std::int64_t duration_ticks() const { return end_ticks - start_ticks; }
};

/// One span. Names follow the repo's layer.noun.verb taxonomy (exactly three
/// [a-z0-9_] segments, e.g. exec.task.run — the span-name lint rule).
struct Span {
  std::uint32_t id = kNoSpan;      ///< assigned by SpanLog::add
  std::uint32_t parent = kNoSpan;  ///< enclosing span (reads nest in tasks)
  SpanKind kind = SpanKind::kTask;
  std::string name;
  /// Executor process rank for exec spans; tenant id for service spans.
  std::uint32_t process = 0;
  std::uint32_t task = kNoTask;  ///< runtime::TaskId / core::JobId
  dfs::NodeId node = dfs::kInvalidNode;    ///< node the span ran on (reader)
  dfs::NodeId server = dfs::kInvalidNode;  ///< read spans: serving node
  std::uint32_t chunk = UINT32_MAX;        ///< read spans: chunk id
  Bytes bytes = 0;                         ///< read spans: payload
  std::int64_t start_ticks = 0;
  std::int64_t end_ticks = 0;
  /// When non-empty: an exact tiling of [start_ticks, end_ticks] — chained,
  /// gap-free, verified on add().
  std::vector<AttrSlice> breakdown;

  std::int64_t duration_ticks() const { return end_ticks - start_ticks; }
};

/// True for exactly three dot-separated segments of [a-z0-9_]+, each
/// starting with a letter (the layer.noun.verb taxonomy).
bool valid_span_name(const std::string& name);

/// Append-only log of spans, in deterministic build order. add() enforces
/// the naming taxonomy and the breakdown reconciliation invariant, so a
/// SpanLog can never hold a slice set that fails to sum to its span.
class SpanLog {
 public:
  /// Validate and append; returns the span's id.
  std::uint32_t add(Span span);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  bool empty() const { return spans_.empty(); }

  /// Latest end tick across all spans (0 when empty) — the makespan once
  /// execution spans are appended.
  std::int64_t max_end_ticks() const { return max_end_ticks_; }

  /// Ticks -> display seconds (rendering only; never used for arithmetic).
  static Seconds seconds(std::int64_t ticks) {
    return static_cast<double>(ticks) * 1e-9;
  }

 private:
  std::vector<Span> spans_;
  std::int64_t max_end_ticks_ = 0;
};

/// Build the exec-layer spans of one finished execution into `log`: per
/// process in rank order, interleaved in time order — a wait span for every
/// inter-task gap, a task span per executed task (breakdown: the reads'
/// slices, retry gaps as kOther, the trailing compute slice), and a child
/// read span per completed read (breakdown: admission wait, positioning,
/// classified binding-resource intervals). Requires the execution to have
/// run with ExecutorConfig::record_read_breakdown on `cluster` (read spans
/// degrade to no breakdown otherwise). The cluster provides the resource
/// role map and the degradation event log for slow-node classification.
void append_execution_spans(SpanLog& log, const runtime::ExecutionResult& exec,
                            const std::vector<runtime::Task>& tasks,
                            const sim::Cluster& cluster);

/// Append the service-layer spans of planned jobs: per job (in status
/// order) a svc.job.queue span [arrival, planned_at] charged to kQueueWait
/// and a zero-width svc.job.plan mark at the batch cut. The span's
/// `process` field carries the tenant id, `task` the job id — which is what
/// makes per-tenant queue-wait aggregation (ROADMAP's co-simulation item)
/// fall out of the generic attribution sums.
void append_service_spans(SpanLog& log, const std::vector<core::JobStatus>& statuses);

}  // namespace opass::obs
