// Imbalance analytics: reduce a finished execution to the paper's Section III
// quantities.
//
// The paper's core measurement is the skew of parallel data access — "the
// amounts of data served by different nodes vary greatly" — and its knock-on
// effect on process finish times. This module turns one ExecutionResult into:
//
//   * dispersion measures over any non-negative sample vector (per-node
//     served bytes, per-process finish times): degree of imbalance
//     (max - mean) / mean, coefficient of variation, Gini coefficient and
//     peak-over-mean ratio;
//   * a straggler detector: nodes / processes whose finish time lags the
//     p90 finish by a configurable factor, each with the causal chunk list
//     (its slowest reads) that explains *why* it lagged.
//
// Everything here is a pure function of the trace, so analytics inherit the
// byte-determinism of the recorder; report.hpp embeds them in the HTML/JSON
// artifacts and bench/perf_executor.cpp in the benchmark JSON.
#pragma once

#include <cstdint>
#include <vector>

#include "dfs/types.hpp"
#include "runtime/executor.hpp"

namespace opass::obs {

/// Dispersion of one non-negative sample vector.
struct ImbalanceStats {
  std::size_t count = 0;
  double mean = 0;
  double max = 0;
  /// (max - mean) / mean, the load-balancing literature's degree of
  /// imbalance: 0 = perfectly even, 1 = the hottest element carries twice
  /// the average. 0 when mean == 0.
  double degree_of_imbalance = 0;
  double cv = 0;    ///< coefficient of variation (stddev / mean)
  double gini = 0;  ///< Gini coefficient in [0, 1); 0 = perfectly even
  /// max / mean (>= 1 for non-empty samples); 0 when mean == 0.
  double peak_over_mean = 0;
};

/// Compute ImbalanceStats. Empty input yields a zeroed result.
ImbalanceStats imbalance_stats(const std::vector<double>& samples);

/// Straggler-detection knobs (options-last on every entry point).
struct StragglerOptions {
  /// An element is a straggler when its finish time exceeds
  /// `lag_factor * p90(finish times)`.
  double lag_factor = 1.2;
  /// Causal chunks reported per straggler (its slowest reads).
  std::size_t max_causal_chunks = 5;
};

/// One lagging node or process.
struct Straggler {
  std::uint32_t id = 0;     ///< node id or process rank
  Seconds finish = 0;       ///< its last activity (serve / drain) time
  Seconds threshold = 0;    ///< the lag_factor * p90 bar it exceeded
  /// The element's slowest chunk reads — served by the node, or issued by
  /// the process — ordered by descending I/O time (chunk id breaks ties).
  std::vector<dfs::ChunkId> causal_chunks;
};

/// Full analytics of one execution.
struct ExecutionAnalytics {
  ImbalanceStats serve_bytes;     ///< over per-node served bytes
  ImbalanceStats process_finish;  ///< over per-process finish times
  Seconds node_finish_p90 = 0;    ///< p90 of per-node last-serve times
  Seconds process_finish_p90 = 0;
  std::vector<Straggler> straggler_nodes;      ///< ascending node id
  std::vector<Straggler> straggler_processes;  ///< ascending process rank
};

/// Reduce one finished execution. `node_count` sizes the per-node series;
/// every trace record must reference a node below it.
ExecutionAnalytics analyze_execution(const runtime::ExecutionResult& result,
                                     std::uint32_t node_count,
                                     StragglerOptions options = {});

}  // namespace opass::obs
