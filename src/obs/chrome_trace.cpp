#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <tuple>

#include "common/require.hpp"
#include "obs/metrics_io.hpp"

namespace opass::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

std::string format_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void ChromeTraceBuilder::set_process_name(std::uint32_t pid, const std::string& name) {
  for (auto& entry : process_names_) {
    if (entry.first == pid) {
      entry.second = name;
      return;
    }
  }
  process_names_.emplace_back(pid, name);
}

void ChromeTraceBuilder::add_execution(const runtime::ExecutionResult& result,
                                       std::uint32_t pid) {
  for (const sim::ReadRecord& r : result.trace.records()) {
    OPASS_REQUIRE(r.end_time >= r.issue_time, "read record with negative duration");
    Event e;
    e.ts_us = r.issue_time * kMicrosPerSecond;
    e.dur_us = r.io_time() * kMicrosPerSecond;
    e.pid = pid;
    e.tid = r.process;
    e.name = "read chunk " + format_u64(r.chunk);
    e.cat = "read";
    e.args_json = "{\"chunk\": " + format_u64(r.chunk) +
                  ", \"bytes\": " + format_u64(r.bytes) +
                  ", \"server\": " + format_u64(r.serving_node) +
                  ", \"local\": " + (r.local ? "true" : "false") + "}";
    events_.push_back(std::move(e));
  }
  for (const runtime::TaskSpan& s : result.task_spans) {
    OPASS_REQUIRE(s.end >= s.start, "task span with negative duration");
    Event e;
    e.ts_us = s.start * kMicrosPerSecond;
    e.dur_us = (s.end - s.start) * kMicrosPerSecond;
    e.pid = pid;
    e.tid = s.process;
    e.name = "task " + format_u64(s.task);
    e.cat = "task";
    events_.push_back(std::move(e));
  }
}

void ChromeTraceBuilder::add_counter(std::uint32_t pid, const std::string& name,
                                     double ts_us, double value) {
  OPASS_REQUIRE(ts_us >= 0, "counter sample before the epoch");
  Event e;
  e.ts_us = ts_us;
  e.pid = pid;
  e.ph = 'C';
  e.name = name;
  e.cat = "counter";
  e.args_json = "{\"value\": " + format_double(value) + "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::add_instant(std::uint32_t pid, const std::string& name,
                                     double ts_us, const char* category) {
  OPASS_REQUIRE(ts_us >= 0, "instant event before the epoch");
  Event e;
  e.ts_us = ts_us;
  e.pid = pid;
  e.ph = 'i';
  e.name = name;
  e.cat = category;
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::add_flow_step(std::uint32_t pid, std::uint32_t tid,
                                       double ts_us, char ph, std::uint64_t flow_id) {
  OPASS_REQUIRE(ph == 's' || ph == 'f', "flow event phase must be 's' or 'f'");
  OPASS_REQUIRE(ts_us >= 0, "flow event before the epoch");
  Event e;
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.ph = ph;
  e.name = "critical_path";
  e.cat = "critical_path";
  e.flow_id = flow_id;
  events_.push_back(std::move(e));
}

std::string ChromeTraceBuilder::json() const {
  std::vector<const Event*> order;
  order.reserve(events_.size());
  for (const Event& e : events_) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(), [](const Event* a, const Event* b) {
    return std::tie(a->ts_us, a->pid, a->tid, a->name) <
           std::tie(b->ts_us, b->pid, b->tid, b->name);
  });

  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  " + event;
  };
  // Metadata block, sorted by pid: a name pins the group label, the
  // sort_index events pin numeric group/track order (the viewer's default is
  // lexicographic, which misplaces rank 10 before rank 2).
  std::vector<std::pair<std::uint32_t, std::string>> names = process_names_;
  std::sort(names.begin(), names.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [pid, name] : names) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " + format_u64(pid) +
         ", \"tid\": 0, \"args\": {\"name\": \"" + name + "\"}}");
    emit("{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": " +
         format_u64(pid) + ", \"tid\": 0, \"args\": {\"sort_index\": " +
         format_u64(pid) + "}}");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks;
  for (const Event& e : events_)
    if (e.ph == 'X') tracks.emplace_back(e.pid, e.tid);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  for (const auto& [pid, tid] : tracks) {
    emit("{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": " +
         format_u64(pid) + ", \"tid\": " + format_u64(tid) +
         ", \"args\": {\"sort_index\": " + format_u64(tid) + "}}");
  }
  for (const Event* e : order) {
    std::string line = "{\"name\": \"" + e->name + "\", \"cat\": \"" + e->cat + "\"";
    if (e->ph == 'X') {
      line += ", \"ph\": \"X\", \"ts\": " + format_double(e->ts_us) +
              ", \"dur\": " + format_double(e->dur_us);
    } else if (e->ph == 'i') {
      line += ", \"ph\": \"i\", \"s\": \"g\", \"ts\": " + format_double(e->ts_us);
    } else if (e->ph == 's' || e->ph == 'f') {
      line += std::string(", \"ph\": \"") + e->ph + "\"";
      if (e->ph == 'f') line += ", \"bp\": \"e\"";
      line += ", \"id\": " + format_u64(e->flow_id) +
              ", \"ts\": " + format_double(e->ts_us);
    } else {
      line += ", \"ph\": \"C\", \"ts\": " + format_double(e->ts_us);
    }
    line += ", \"pid\": " + format_u64(e->pid) + ", \"tid\": " + format_u64(e->tid);
    if (!e->args_json.empty()) line += ", \"args\": " + e->args_json;
    line += "}";
    emit(line);
  }
  out += first ? "], " : "\n], ";
  out += "\"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string to_chrome_trace_json(const runtime::ExecutionResult& result) {
  ChromeTraceBuilder builder;
  builder.add_execution(result, /*pid=*/0);
  return builder.json();
}

}  // namespace opass::obs
