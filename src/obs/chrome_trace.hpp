// Chrome trace-event exporter: turn a recorded execution into a JSON file
// that chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
//
// Mapping. Each executor process becomes a track (tid = process rank, one
// pid per execution added to the builder — so `--method=both` runs render as
// two side-by-side process groups). Every sim::ReadRecord becomes a complete
// ("X") event in category "read" spanning issue_time..end_time with the
// chunk, byte count, serving node and locality in its args; every
// runtime::TaskSpan becomes an "X" event in category "task" spanning
// pull..compute-done. Cluster-wide timeline series additionally export as
// counter ("C") tracks (obs::add_timeline_counters). Virtual seconds map to
// trace microseconds (1 s = 1e6 µs), the unit the trace-event spec requires.
//
// Determinism: metadata events are emitted sorted by (pid, tid), duration
// and counter events by (ts, pid, tid, name), all with the fixed number
// format of obs/metrics_io.hpp — so a seeded run exports a byte-identical
// trace, the same contract as the metric sinks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/executor.hpp"

namespace opass::obs {

/// Accumulates executions and renders one trace-event JSON document.
class ChromeTraceBuilder {
 public:
  /// Name the process group `pid` (emitted as an "M" process_name metadata
  /// event, shown as the group label in the viewer). Repeated calls for the
  /// same pid overwrite the previous name — one metadata event per pid.
  void set_process_name(std::uint32_t pid, const std::string& name);

  /// Add every read and task span of `result` under process group `pid`.
  /// Call once per execution; use distinct pids to compare methods in one
  /// trace.
  void add_execution(const runtime::ExecutionResult& result, std::uint32_t pid = 0);

  /// Append one counter ("C") sample: counter `name` had `value` at `ts_us`
  /// trace microseconds. Consecutive samples of the same (pid, name) render
  /// as a step chart in the viewer.
  void add_counter(std::uint32_t pid, const std::string& name, double ts_us,
                   double value);

  /// Append one global instant ("i", scope "g") event — a vertical marker
  /// across the whole trace. Used for failure-model transitions (crash,
  /// detection, recovery-complete) so fault timing lines up visually with
  /// the read/task spans it perturbs.
  void add_instant(std::uint32_t pid, const std::string& name, double ts_us,
                   const char* category = "fault");

  /// Append one flow event: `ph` is 's' (flow start, stamped at the source
  /// span's end) or 'f' (flow finish, binding point "e", stamped at the
  /// destination span's start); events with the same `flow_id` render as one
  /// arrow in the viewer. Used by obs::add_critical_path_flows to draw the
  /// critical path's cross-process hops over the task tracks.
  void add_flow_step(std::uint32_t pid, std::uint32_t tid, double ts_us, char ph,
                     std::uint64_t flow_id);

  /// Number of duration and counter events added so far (metadata not
  /// counted).
  std::size_t event_count() const { return events_.size(); }

  /// Render the document: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  /// Metadata events first — process_name / process_sort_index per named
  /// pid and thread_sort_index per (pid, tid) track, sorted by (pid, tid) so
  /// the viewer orders groups and tracks numerically — then duration and
  /// counter events sorted by timestamp.
  std::string json() const;

 private:
  struct Event {
    double ts_us = 0;   ///< issue time in trace microseconds
    double dur_us = 0;  ///< duration in trace microseconds (>= 0; "X" only)
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    char ph = 'X';  ///< "X" duration, "C" counter, "i" instant, "s"/"f" flow
    std::string name;
    const char* cat = "";
    std::string args_json;   ///< rendered {...} args object, may be empty
    std::uint64_t flow_id = 0;  ///< binding id for "s"/"f" events
  };

  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> process_names_;
};

/// One-shot convenience: export a single execution as pid 0.
std::string to_chrome_trace_json(const runtime::ExecutionResult& result);

}  // namespace opass::obs
