// Deterministic metrics registry: named counters, gauges and fixed-bucket
// histograms, plus scoped phase timers keyed by virtual or wall time.
//
// The registry is the single collection point for everything the simulator,
// the executor and the planners measure. Two invariants make it useful for a
// reproduction repo:
//
//  * Deterministic export. Metrics are kept in registration order and
//    serialized (obs/metrics_io.hpp) with a fixed number format, so the same
//    seeded run produces byte-identical output every time. Registration
//    order is itself deterministic because all instrumented code paths are.
//  * Explicit wall-clock tagging. Host timings (planner milliseconds and the
//    like) are real observations but not replayable; they register as
//    Determinism::kWallClock and the exporters exclude them unless asked,
//    keeping the default sinks byte-stable.
//
// Collectors that reduce finished runs into a registry live in
// obs/collect.hpp; serialization in obs/metrics_io.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace opass::obs {

/// What a Metric holds.
enum class MetricKind {
  kCounter,    ///< monotonically increasing 64-bit count
  kGauge,      ///< last-written double (a level, a ratio, a duration)
  kHistogram,  ///< fixed-bucket sample distribution
};

/// Canonical lowercase name ("counter", "gauge", "histogram").
const char* metric_kind_name(MetricKind kind);

/// Whether a metric replays byte-identically under a fixed seed.
enum class Determinism {
  kDeterministic,  ///< derived from simulation state; replayable
  kWallClock,      ///< host timing; excluded from deterministic exports
};

/// Fixed-bucket histogram state. A sample `s` lands in the first bucket `i`
/// with `s <= upper_bounds[i]`; samples above the last bound land in the
/// final (overflow) bucket, so `buckets.size() == upper_bounds.size() + 1`
/// and no sample is ever dropped.
struct HistogramData {
  std::vector<double> upper_bounds;    ///< strictly ascending bucket edges
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts; last = overflow
  std::uint64_t count = 0;             ///< total samples observed
  double sum = 0;                      ///< sum of all samples
  double min = 0;                      ///< smallest sample (0 when empty)
  double max = 0;                      ///< largest sample (0 when empty)

  /// Samples that exceeded every bound.
  std::uint64_t overflow() const { return buckets.empty() ? 0 : buckets.back(); }

  /// Mean of the observed samples; 0 when empty.
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// One named measurement. Exactly one of `counter` / `gauge` / `histogram`
/// is meaningful, selected by `kind`; the others stay zero-initialized.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Determinism determinism = Determinism::kDeterministic;
  std::uint64_t counter = 0;
  double gauge = 0;
  HistogramData histogram;
};

/// Collection point for counters, gauges and histograms. Metrics are created
/// on first touch and kept in registration order; re-touching a name with a
/// different kind is a programming error (OPASS_REQUIRE).
class MetricsRegistry {
 public:
  /// Add `delta` to a counter, creating it at zero on first touch.
  /// Counters are always deterministic — they count simulation events.
  void counter_add(const std::string& name, std::uint64_t delta = 1);

  /// Set a gauge to `value`, creating it on first touch. The determinism tag
  /// is fixed on creation; later writes must agree.
  void gauge_set(const std::string& name, double value,
                 Determinism determinism = Determinism::kDeterministic);

  /// Create a histogram with the given strictly ascending bucket bounds
  /// (plus the implicit overflow bucket). Re-defining an existing histogram
  /// with identical bounds is a no-op; with different bounds it is an error.
  void define_histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Record one sample into a previously defined histogram.
  void observe(const std::string& name, double sample);

  /// True when a metric of any kind with this name exists.
  bool contains(const std::string& name) const;

  /// Look up a metric by name; it must exist.
  const Metric& at(const std::string& name) const;

  /// All metrics in registration order (the exporters' iteration order).
  const std::vector<Metric>& metrics() const { return metrics_; }

  std::size_t size() const { return metrics_.size(); }

  /// Drop every metric (e.g. between scenarios sharing one registry).
  void clear();

 private:
  Metric& get_or_create(const std::string& name, MetricKind kind, Determinism determinism);

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// RAII wall-clock phase timer: on destruction writes the elapsed host
/// milliseconds to gauge `name` tagged Determinism::kWallClock (so default
/// exports stay byte-stable). For virtual-time phases use record_phase().
class ScopedWallTimer {
 public:
  ScopedWallTimer(MetricsRegistry& registry, std::string name);
  ~ScopedWallTimer();

  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Record a virtual-time phase `[start, end]` as a deterministic gauge of
/// its duration in (simulated) seconds. `end` must not precede `start`.
void record_phase(MetricsRegistry& registry, const std::string& name, Seconds start,
                  Seconds end);

}  // namespace opass::obs
