#include "obs/timeline.hpp"

#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace opass::obs {

namespace {

/// Boundary index of the last sample due at or before `now`:
/// floor(now / interval) with a relative epsilon so times that are
/// mathematically on a boundary but one ulp below it still count as on it.
std::uint64_t tick_floor(Seconds now, Seconds interval) {
  if (now <= 0) return 0;
  return static_cast<std::uint64_t>(std::floor(now / interval * (1.0 + 1e-12)));
}

bool lower_segment(const std::string& name, std::size_t begin, std::size_t end) {
  if (begin >= end) return false;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* series_kind_name(SeriesKind kind) {
  return kind == SeriesKind::kLevel ? "level" : "rate";
}

bool valid_timeline_series_name(const std::string& name) {
  constexpr const char kPrefix[] = "timeline.";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  std::size_t segments = 1;  // "timeline"
  std::size_t begin = kPrefixLen;
  while (true) {
    const std::size_t dot = name.find('.', begin);
    const std::size_t end = dot == std::string::npos ? name.size() : dot;
    if (!lower_segment(name, begin, end)) return false;
    ++segments;
    if (dot == std::string::npos) break;
    begin = dot + 1;
  }
  return segments >= 3;
}

TimelineRecorder::TimelineRecorder() : TimelineRecorder(Options{}) {}

TimelineRecorder::TimelineRecorder(Options options)
    : interval_(options.interval), capacity_(options.capacity) {
  OPASS_REQUIRE(interval_ > 0, "sampling interval must be positive");
  OPASS_REQUIRE(capacity_ > 0, "ring capacity must be positive");
}

TimelineRecorder::SeriesId TimelineRecorder::add_level_series(const std::string& name,
                                                              double initial) {
  OPASS_REQUIRE(valid_timeline_series_name(name),
                "series name must follow the timeline.<subsystem>.<metric> taxonomy: " + name);
  for (const Series& s : series_)
    OPASS_REQUIRE(s.name != name, "duplicate timeline series: " + name);
  OPASS_REQUIRE(next_tick_ == 0 && !finished_,
                "register every series before the first sample");
  Series s;
  s.name = name;
  s.kind = SeriesKind::kLevel;
  s.level = initial;
  series_.push_back(std::move(s));
  return static_cast<SeriesId>(series_.size() - 1);
}

TimelineRecorder::SeriesId TimelineRecorder::add_rate_series(const std::string& name) {
  const SeriesId id = add_level_series(name, 0);
  series_[id].kind = SeriesKind::kRate;
  return id;
}

TimelineRecorder::Series& TimelineRecorder::checked(SeriesId id) {
  OPASS_REQUIRE(id < series_.size(), "unknown timeline series id");
  OPASS_REQUIRE(!finished_, "cannot record into a finished timeline");
  return series_[id];
}

void TimelineRecorder::record_level(SeriesId id, Seconds now, double value) {
  Series& s = checked(id);
  OPASS_REQUIRE(s.kind == SeriesKind::kLevel, "record_level on a rate series");
  advance_to(now);
  s.level = value;
}

void TimelineRecorder::record_delta(SeriesId id, Seconds now, double delta) {
  Series& s = checked(id);
  OPASS_REQUIRE(s.kind == SeriesKind::kLevel, "record_delta on a rate series");
  advance_to(now);
  s.level += delta;
}

void TimelineRecorder::record_rate(SeriesId id, Seconds now, double amount) {
  Series& s = checked(id);
  OPASS_REQUIRE(s.kind == SeriesKind::kRate, "record_rate on a level series");
  advance_to(now);
  s.accum += amount;
}

void TimelineRecorder::emit_tick(Seconds /*tick_start*/, Seconds duration) {
  const std::size_t slot = static_cast<std::size_t>(next_tick_ % capacity_);
  for (Series& s : series_) {
    double sample = s.level;
    if (s.kind == SeriesKind::kRate) {
      sample = s.accum / duration;
      s.accum = 0;
    }
    if (s.ring.size() < capacity_) {
      s.ring.push_back(sample);  // warm-up growth; allocation-free once full
    } else {
      s.ring[slot] = sample;
    }
  }
  ++next_tick_;
}

void TimelineRecorder::advance_to(Seconds now) {
  OPASS_REQUIRE(!finished_, "cannot advance a finished timeline");
  const std::uint64_t last = tick_floor(now, interval_);
  while (next_tick_ <= last)
    emit_tick(static_cast<double>(next_tick_) * interval_, interval_);
}

void TimelineRecorder::finish(Seconds end) {
  OPASS_REQUIRE(!finished_, "timeline already finished");
  advance_to(end);
  finished_ = true;
  end_time_ = end;
  // An end strictly inside an interval leaves an open remainder
  // [last_boundary, end); emit it as one partial sample scaled by its true
  // duration so trailing rate mass is never dropped.
  const Seconds covered = static_cast<double>(next_tick_ ? next_tick_ - 1 : 0) * interval_;
  const Seconds rest = end - covered;
  if (next_tick_ > 0 && rest > interval_ * 1e-9) {
    partial_duration_ = rest;
    for (Series& s : series_) {
      s.partial = s.kind == SeriesKind::kRate ? s.accum / rest : s.level;
      s.accum = 0;
    }
  } else if (next_tick_ > 0) {
    // The run ended exactly on a boundary. Events stamped at `end` were
    // charged to the next interval — which will never come — so restamp the
    // final boundary with the end state: rates fold the trailing
    // accumulation in, levels take their final value.
    const std::size_t slot = static_cast<std::size_t>((next_tick_ - 1) % capacity_);
    for (Series& s : series_) {
      if (s.kind == SeriesKind::kRate) {
        if (s.accum != 0) s.ring[slot] += s.accum / interval_;
        s.accum = 0;
      } else {
        s.ring[slot] = s.level;
      }
    }
  }
}

const std::string& TimelineRecorder::series_name(SeriesId id) const {
  OPASS_REQUIRE(id < series_.size(), "unknown timeline series id");
  return series_[id].name;
}

SeriesKind TimelineRecorder::series_kind(SeriesId id) const {
  OPASS_REQUIRE(id < series_.size(), "unknown timeline series id");
  return series_[id].kind;
}

std::uint64_t TimelineRecorder::first_retained_tick() const {
  return next_tick_ > capacity_ ? next_tick_ - capacity_ : 0;
}

std::uint64_t TimelineRecorder::dropped_ticks() const { return first_retained_tick(); }

std::vector<double> TimelineRecorder::series_values(SeriesId id) const {
  OPASS_REQUIRE(id < series_.size(), "unknown timeline series id");
  const Series& s = series_[id];
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(next_tick_ - first_retained_tick()) +
              (partial_duration_ > 0 ? 1 : 0));
  for (std::uint64_t t = first_retained_tick(); t < next_tick_; ++t)
    out.push_back(s.ring[static_cast<std::size_t>(t % capacity_)]);
  if (partial_duration_ > 0) out.push_back(s.partial);
  return out;
}

// --- probes -----------------------------------------------------------------

ClusterTimelineProbe::ClusterTimelineProbe(TimelineRecorder& recorder,
                                           const sim::Cluster& cluster)
    : recorder_(recorder), cluster_(cluster) {
  const std::uint32_t m = cluster.node_count();
  node_rate_.reserve(m);
  node_inflight_.reserve(m);
  for (std::uint32_t n = 0; n < m; ++n) {
    const std::string node = "timeline.cluster.node." + std::to_string(n);
    node_rate_.push_back(recorder_.add_rate_series(node + ".serve_bytes_per_s"));
    node_inflight_.push_back(recorder_.add_level_series(node + ".inflight"));
  }
  total_rate_ = recorder_.add_rate_series("timeline.cluster.serve_bytes_per_s");
  total_inflight_ = recorder_.add_level_series("timeline.cluster.inflight");
  read_slots_ = recorder_.add_level_series("timeline.cluster.read_slots");
  bytes_remaining_ = recorder_.add_level_series("timeline.cluster.bytes_remaining");
}

void ClusterTimelineProbe::add_expected_bytes(Seconds now, Bytes bytes) {
  remaining_ += static_cast<double>(bytes);
  recorder_.record_level(bytes_remaining_, now, remaining_);
}

void ClusterTimelineProbe::on_read_issued(Seconds now, dfs::NodeId server, Bytes /*bytes*/) {
  ++inflight_total_;
  recorder_.record_level(node_inflight_[server], now,
                         cluster_.inflight_per_node()[server]);
  recorder_.record_level(total_inflight_, now, inflight_total_);
  recorder_.record_level(read_slots_, now, cluster_.read_slot_count());
}

void ClusterTimelineProbe::on_read_finished(Seconds now, dfs::NodeId server, Bytes bytes,
                                            bool completed) {
  OPASS_CHECK(inflight_total_ > 0, "timeline in-flight underflow");
  --inflight_total_;
  recorder_.record_level(node_inflight_[server], now,
                         cluster_.inflight_per_node()[server]);
  recorder_.record_level(total_inflight_, now, inflight_total_);
  if (!completed) return;  // aborted reads retry; their bytes are still owed
  recorder_.record_rate(node_rate_[server], now, static_cast<double>(bytes));
  recorder_.record_rate(total_rate_, now, static_cast<double>(bytes));
  remaining_ -= static_cast<double>(bytes);
  recorder_.record_level(bytes_remaining_, now, remaining_);
}

ExecutorTimelineProbe::ExecutorTimelineProbe(TimelineRecorder& recorder,
                                             std::uint32_t process_count)
    : recorder_(recorder), depth_(process_count, 0) {
  process_depth_.reserve(process_count);
  for (std::uint32_t p = 0; p < process_count; ++p)
    process_depth_.push_back(recorder_.add_level_series(
        "timeline.executor.process." + std::to_string(p) + ".depth"));
  queue_depth_ = recorder_.add_level_series("timeline.executor.queue_depth");
}

void ExecutorTimelineProbe::on_process_depth(Seconds now, runtime::ProcessId process,
                                             std::uint32_t depth) {
  OPASS_REQUIRE(process < depth_.size(), "process rank out of probe range");
  total_depth_ += depth;
  OPASS_CHECK(total_depth_ >= depth_[process], "queue depth underflow");
  total_depth_ -= depth_[process];
  depth_[process] = depth;
  recorder_.record_level(process_depth_[process], now, depth);
  recorder_.record_level(queue_depth_, now, total_depth_);
}

ServiceTimelineProbe::ServiceTimelineProbe(TimelineRecorder& recorder,
                                           std::uint32_t tenant_count)
    : recorder_(recorder), tenant_level_(tenant_count, 0) {
  queue_depth_ = recorder_.add_level_series("timeline.service.queue_depth");
  batch_jobs_ = recorder_.add_level_series("timeline.service.batch_jobs");
  batch_tasks_ = recorder_.add_level_series("timeline.service.batch_tasks");
  planned_rate_ = recorder_.add_rate_series("timeline.service.planned_tasks_per_s");
  local_rate_ = recorder_.add_rate_series("timeline.service.local_tasks_per_s");
  tenant_bytes_.reserve(tenant_count);
  for (std::uint32_t i = 0; i < tenant_count; ++i)
    tenant_bytes_.push_back(recorder_.add_level_series(
        "timeline.service.tenant." + std::to_string(i) + ".local_bytes"));
}

void ServiceTimelineProbe::on_job_queued(Seconds now, const core::JobStatus& /*job*/,
                                         std::uint32_t queue_depth) {
  recorder_.record_level(queue_depth_, now, queue_depth);
}

void ServiceTimelineProbe::on_job_cancelled(Seconds now, const core::JobStatus& /*job*/,
                                            std::uint32_t queue_depth) {
  recorder_.record_level(queue_depth_, now, queue_depth);
}

void ServiceTimelineProbe::on_batch_planned(const core::BatchReport& report) {
  const Seconds now = report.planned_at;
  recorder_.record_level(queue_depth_, now, report.queue_depth_after);
  recorder_.record_level(batch_jobs_, now, report.jobs);
  recorder_.record_level(batch_tasks_, now, report.tasks);
  recorder_.record_rate(planned_rate_, now, report.tasks);
  recorder_.record_rate(local_rate_, now, report.locally_matched);
  for (const core::TenantBatchShare& share : report.tenants) {
    OPASS_REQUIRE(share.tenant < tenant_level_.size(),
                  "tenant id out of the probe's declared range");
    tenant_level_[share.tenant] += static_cast<double>(share.local_bytes);
    recorder_.record_level(tenant_bytes_[share.tenant], now,
                           tenant_level_[share.tenant]);
  }
}

// --- per-run wiring ---------------------------------------------------------

RunTimeline::RunTimeline(TimelineRecorder* recorder, sim::Cluster& cluster,
                         std::uint32_t process_count)
    : recorder_(recorder), cluster_(cluster) {
  if (recorder_ == nullptr) return;
  // Probe registration is idempotent per recorder: a recorder carries series
  // from at most one cluster/executor shape, so re-wiring the same recorder
  // (multi-step scenarios recreate RunTimeline only when they recreate the
  // cluster) would double-register names and trip the duplicate check.
  cluster_probe_ = std::make_unique<ClusterTimelineProbe>(*recorder_, cluster);
  executor_probe_ = std::make_unique<ExecutorTimelineProbe>(*recorder_, process_count);
  cluster_.set_probe(cluster_probe_.get());
}

RunTimeline::~RunTimeline() {
  if (cluster_probe_ != nullptr) cluster_.set_probe(nullptr);
}

runtime::ExecutorProbe* RunTimeline::executor_probe() { return executor_probe_.get(); }

void RunTimeline::add_expected_bytes(Bytes bytes) {
  if (cluster_probe_ != nullptr)
    cluster_probe_->add_expected_bytes(cluster_.simulator().now(), bytes);
}

void RunTimeline::finish() {
  if (recorder_ != nullptr) recorder_->finish(cluster_.simulator().now());
}

}  // namespace opass::obs
