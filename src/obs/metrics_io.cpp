#include "obs/metrics_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"

namespace opass::obs {

namespace {

/// Minimal JSON string escaping; metric names are ASCII identifiers, but the
/// writer must not silently corrupt output if one ever is not.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// RFC 4180 field quoting: a name containing a comma, quote, CR or LF is
/// wrapped in double quotes with embedded quotes doubled. Metric names are
/// normally bare identifiers, but an adversarial label must not shift every
/// column after it (tests/obs/metrics_test.cpp pins this).
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

bool included(const Metric& m, const ExportOptions& options) {
  return options.include_wall_clock || m.determinism == Determinism::kDeterministic;
}

}  // namespace

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  std::string s = buf;
  if (s == "-0") s = "0";
  return s;
}

std::string to_json(const MetricsRegistry& registry, ExportOptions options) {
  std::string out = "{\n  \"schema\": 1,\n  \"metrics\": [";
  bool first = true;
  for (const Metric& m : registry.metrics()) {
    if (!included(m, options)) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(m.name) + "\", \"kind\": \"";
    out += metric_kind_name(m.kind);
    out += "\"";
    if (m.determinism == Determinism::kWallClock) out += ", \"wall_clock\": true";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": " + format_u64(m.counter);
        break;
      case MetricKind::kGauge:
        out += ", \"value\": " + format_double(m.gauge);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        out += ", \"count\": " + format_u64(h.count);
        out += ", \"sum\": " + format_double(h.sum);
        out += ", \"min\": " + format_double(h.min);
        out += ", \"max\": " + format_double(h.max);
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          if (i) out += ", ";
          out += "{\"le\": " + format_double(h.upper_bounds[i]) +
                 ", \"count\": " + format_u64(h.buckets[i]) + "}";
        }
        out += "], \"overflow\": " + format_u64(h.overflow());
        break;
      }
    }
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_csv(const MetricsRegistry& registry, ExportOptions options) {
  std::string out = "name,kind,value\n";
  const auto row = [&out](const std::string& name, const char* kind,
                          const std::string& value) {
    out += csv_escape(name);
    out += ',';
    out += kind;
    out += ',';
    out += value;
    out += '\n';
  };
  for (const Metric& m : registry.metrics()) {
    if (!included(m, options)) continue;
    switch (m.kind) {
      case MetricKind::kCounter:
        row(m.name, "counter", format_u64(m.counter));
        break;
      case MetricKind::kGauge:
        row(m.name, "gauge", format_double(m.gauge));
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        row(m.name + ".count", "histogram", format_u64(h.count));
        row(m.name + ".sum", "histogram", format_double(h.sum));
        row(m.name + ".min", "histogram", format_double(h.min));
        row(m.name + ".max", "histogram", format_double(h.max));
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i)
          row(m.name + ".le_" + format_double(h.upper_bounds[i]), "histogram",
              format_u64(h.buckets[i]));
        row(m.name + ".overflow", "histogram", format_u64(h.overflow()));
        break;
      }
    }
  }
  return out;
}

IoStatus write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {false, "cannot open '" + path + "' for writing"};
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return {false, "short write to '" + path + "'"};
  return {};
}

IoStatus write_metrics(const MetricsRegistry& registry, const std::string& path,
                       ExportOptions options) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return write_file(path, csv ? to_csv(registry, options) : to_json(registry, options));
}

}  // namespace opass::obs
