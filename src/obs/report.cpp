#include "obs/report.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics_io.hpp"

namespace opass::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;
constexpr int kChartWidth = 640;
constexpr int kChartHeight = 160;

bool safe_label(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Sample times of a finished recorder: boundary ticks at k * interval for
/// every retained tick, plus the trailing partial sample at end_time.
std::vector<double> sample_times(const TimelineRecorder& t) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(t.tick_count() - t.first_retained_tick()) + 1);
  for (std::uint64_t k = t.first_retained_tick(); k < t.tick_count(); ++k)
    times.push_back(static_cast<double>(k) * t.interval());
  if (t.partial_duration() > 0) times.push_back(t.end_time());
  return times;
}

/// Find a series id by exact name; returns false when the recorder has none
/// (e.g. a run shape that never wired the executor probe).
bool find_series(const TimelineRecorder& t, const std::string& name,
                 TimelineRecorder::SeriesId& out) {
  for (TimelineRecorder::SeriesId id = 0; id < t.series_count(); ++id) {
    if (t.series_name(id) == name) {
      out = id;
      return true;
    }
  }
  return false;
}

/// One inline SVG step chart of a single series.
std::string svg_chart(const std::string& chart_id, const std::string& title,
                      const TimelineRecorder& t, const std::string& series) {
  std::string out = "<figure>\n<figcaption>" + title + "</figcaption>\n";
  TimelineRecorder::SeriesId id = 0;
  if (!find_series(t, series, id)) {
    return out + "<p class=\"missing\" id=\"" + chart_id +
           "\">series not recorded</p>\n</figure>\n";
  }
  const std::vector<double> values = t.series_values(id);
  const std::vector<double> times = sample_times(t);
  OPASS_CHECK(values.size() == times.size(), "sample/time count mismatch");

  double vmax = 0;
  for (double v : values) vmax = std::max(vmax, v);
  const double tmax = times.empty() ? 0 : std::max(times.back(), t.interval());

  out += "<svg id=\"" + chart_id + "\" viewBox=\"0 0 " +
         std::to_string(kChartWidth) + " " + std::to_string(kChartHeight) +
         "\" preserveAspectRatio=\"none\">\n";
  std::string points;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x = tmax > 0 ? times[i] / tmax * kChartWidth : 0;
    const double y = vmax > 0 ? kChartHeight - values[i] / vmax * kChartHeight
                              : kChartHeight;
    if (!points.empty()) points += " ";
    points += format_double(x) + "," + format_double(y);
  }
  out += "<polyline fill=\"none\" stroke=\"currentColor\" stroke-width=\"1.5\" "
         "points=\"" + points + "\"/>\n</svg>\n";
  out += "<p class=\"axis\">0 &ndash; " + format_double(tmax) +
         " s, peak " + format_double(vmax) + "</p>\n</figure>\n";
  return out;
}

std::string imbalance_json(const ImbalanceStats& s) {
  return "{\"count\": " + std::to_string(s.count) +
         ", \"mean\": " + format_double(s.mean) +
         ", \"max\": " + format_double(s.max) +
         ", \"degree_of_imbalance\": " + format_double(s.degree_of_imbalance) +
         ", \"cv\": " + format_double(s.cv) +
         ", \"gini\": " + format_double(s.gini) +
         ", \"peak_over_mean\": " + format_double(s.peak_over_mean) + "}";
}

std::string stragglers_json(const std::vector<Straggler>& list) {
  std::string out = "[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Straggler& s = list[i];
    if (i > 0) out += ", ";
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"finish\": " + format_double(s.finish) +
           ", \"threshold\": " + format_double(s.threshold) + ", \"chunks\": [";
    for (std::size_t c = 0; c < s.causal_chunks.size(); ++c) {
      if (c > 0) out += ", ";
      out += std::to_string(s.causal_chunks[c]);
    }
    out += "]}";
  }
  return out + "]";
}

std::string imbalance_rows(const std::string& label, const ImbalanceStats& s) {
  return "<tr><td>" + label + " degree of imbalance</td><td>" +
         format_double(s.degree_of_imbalance) + "</td></tr>\n<tr><td>" + label +
         " CV</td><td>" + format_double(s.cv) + "</td></tr>\n<tr><td>" + label +
         " Gini</td><td>" + format_double(s.gini) + "</td></tr>\n<tr><td>" +
         label + " peak / mean</td><td>" + format_double(s.peak_over_mean) +
         "</td></tr>\n";
}

std::string straggler_rows(const std::string& label,
                           const std::vector<Straggler>& list) {
  std::string out = "<tr><td>";
  out += label;
  out += "</td><td>";
  out += std::to_string(list.size());
  if (!list.empty()) {
    out += " (";
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) out += ", ";
      out += '#';
      out += std::to_string(list[i].id);
    }
    out += ")";
  }
  out += "</td></tr>\n";
  return out;
}

}  // namespace

void ReportBuilder::add_method(MethodReport method) {
  OPASS_REQUIRE(safe_label(method.name),
                "method name must be [a-z0-9_]+: " + method.name);
  OPASS_REQUIRE(method.timeline != nullptr, "method report without a timeline");
  OPASS_REQUIRE(method.timeline->finished(),
                "finish() the recorder before building reports");
  for (const MethodReport& m : methods_)
    OPASS_REQUIRE(m.name != method.name, "duplicate method report: " + method.name);
  methods_.push_back(std::move(method));
}

std::string ReportBuilder::html() const {
  std::string out =
      "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
      "<title>opass run report</title>\n<style>\n"
      "body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }\n"
      "section { margin-bottom: 2.5rem; }\n"
      "figure { margin: 1rem 0; }\n"
      "figcaption { font-weight: 600; margin-bottom: 0.25rem; }\n"
      "svg { width: 100%; max-width: 640px; height: 160px; display: block;\n"
      "      border: 1px solid #ccc; background: #fafafa; color: #0b62a4; }\n"
      ".axis, .missing { color: #666; font-size: 0.85rem; margin: 0.25rem 0; }\n"
      "table { border-collapse: collapse; }\n"
      "td { border: 1px solid #ccc; padding: 0.25rem 0.75rem; }\n"
      "</style>\n</head>\n<body>\n<h1>opass run report</h1>\n";
  for (const MethodReport& m : methods_) {
    const TimelineRecorder& t = *m.timeline;
    out += "<section id=\"method-" + m.name + "\">\n<h2>" + m.name + "</h2>\n";
    out += "<table>\n";
    out += "<tr><td>makespan</td><td>" + format_double(m.makespan) + " s</td></tr>\n";
    out += "<tr><td>local read fraction</td><td>" + format_double(m.local_fraction) +
           "</td></tr>\n";
    out += imbalance_rows("serve bytes", m.analytics.serve_bytes);
    out += imbalance_rows("process finish", m.analytics.process_finish);
    out += straggler_rows("straggler nodes", m.analytics.straggler_nodes);
    out += straggler_rows("straggler processes", m.analytics.straggler_processes);
    if (t.dropped_ticks() > 0) {
      out += "<tr><td>dropped ticks (ring wrap)</td><td>" +
             std::to_string(t.dropped_ticks()) + "</td></tr>\n";
    }
    out += "</table>\n";
    if (m.spans != nullptr && !m.spans->empty()) {
      // Bottleneck attribution: where the (top-level) span time went, per
      // causal bucket and per blamed node — the DESIGN.md §13 breakdown.
      const AttributionTotals totals = attribute_spans(*m.spans, m.node_count);
      out += "<h3>bottleneck attribution</h3>\n<table>\n";
      for (std::size_t k = 0; k < kAttrKindCount; ++k) {
        if (totals.kind_ticks[k] == 0) continue;
        const double share = totals.total_ticks > 0
                                 ? static_cast<double>(totals.kind_ticks[k]) /
                                       static_cast<double>(totals.total_ticks)
                                 : 0.0;
        out += std::string("<tr><td>") + attr_kind_name(static_cast<AttrKind>(k)) +
               "</td><td>" +
               format_double(static_cast<double>(totals.kind_ticks[k]) * 1e-9) +
               " s</td><td>" + format_double(100.0 * share) + "%</td></tr>\n";
      }
      out += "</table>\n";
      std::vector<std::size_t> nodes;
      for (std::size_t n = 0; n < totals.node_ticks.size(); ++n)
        if (totals.node_ticks[n] > 0) nodes.push_back(n);
      std::stable_sort(nodes.begin(), nodes.end(), [&](std::size_t a, std::size_t b) {
        return totals.node_ticks[a] > totals.node_ticks[b];
      });
      if (nodes.size() > 8) nodes.resize(8);
      if (!nodes.empty()) {
        out += "<h3>top blamed nodes</h3>\n<table>\n";
        for (std::size_t n : nodes)
          out += "<tr><td>node " + std::to_string(n) + "</td><td>" +
                 format_double(static_cast<double>(totals.node_ticks[n]) * 1e-9) +
                 " s</td></tr>\n";
        out += "</table>\n";
      }
    }
    out += svg_chart("chart-" + m.name + "-serve-bytes",
                     "cluster serve rate (bytes/s)", t,
                     "timeline.cluster.serve_bytes_per_s");
    out += svg_chart("chart-" + m.name + "-queue-depth",
                     "executor queue depth (in-flight ops)", t,
                     "timeline.executor.queue_depth");
    out += svg_chart("chart-" + m.name + "-bytes-remaining", "bytes remaining", t,
                     "timeline.cluster.bytes_remaining");
    out += "</section>\n";
  }
  out += "</body>\n</html>\n";
  return out;
}

std::string ReportBuilder::timeline_json() const {
  std::string out = "{\"schema\": 1, \"methods\": [";
  for (std::size_t mi = 0; mi < methods_.size(); ++mi) {
    const MethodReport& m = methods_[mi];
    const TimelineRecorder& t = *m.timeline;
    out += mi > 0 ? ",\n" : "\n";
    out += " {\"name\": \"" + m.name + "\"";
    out += ", \"interval\": " + format_double(t.interval());
    out += ", \"end_time\": " + format_double(t.end_time());
    out += ", \"partial_duration\": " + format_double(t.partial_duration());
    out += ", \"tick_count\": " + std::to_string(t.tick_count());
    out += ", \"dropped_ticks\": " + std::to_string(t.dropped_ticks());
    out += ", \"makespan\": " + format_double(m.makespan);
    out += ", \"local_fraction\": " + format_double(m.local_fraction);
    out += ",\n  \"analytics\": {\"serve_bytes\": " +
           imbalance_json(m.analytics.serve_bytes) +
           ", \"process_finish\": " + imbalance_json(m.analytics.process_finish) +
           ", \"node_finish_p90\": " + format_double(m.analytics.node_finish_p90) +
           ", \"process_finish_p90\": " +
           format_double(m.analytics.process_finish_p90) +
           ", \"straggler_nodes\": " + stragglers_json(m.analytics.straggler_nodes) +
           ", \"straggler_processes\": " +
           stragglers_json(m.analytics.straggler_processes) + "}";
    out += ",\n  \"series\": [";
    for (TimelineRecorder::SeriesId id = 0; id < t.series_count(); ++id) {
      out += id > 0 ? ",\n   " : "\n   ";
      out += "{\"name\": \"" + t.series_name(id) + "\", \"kind\": \"" +
             series_kind_name(t.series_kind(id)) + "\", \"values\": [";
      const std::vector<double> values = t.series_values(id);
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out += ", ";
        out += format_double(values[i]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

void add_timeline_counters(ChromeTraceBuilder& trace, const TimelineRecorder& timeline,
                           std::uint32_t pid) {
  OPASS_REQUIRE(timeline.finished(), "finish() the recorder before exporting counters");
  for (TimelineRecorder::SeriesId id = 0; id < timeline.series_count(); ++id) {
    const std::string& name = timeline.series_name(id);
    // Cluster-wide series only: exactly three segments. Per-node/per-process
    // series have four and would swamp the viewer with counter tracks.
    if (std::count(name.begin(), name.end(), '.') != 2) continue;
    const std::vector<double> values = timeline.series_values(id);
    const std::vector<double> times = sample_times(timeline);
    for (std::size_t i = 0; i < values.size(); ++i)
      trace.add_counter(pid, name, times[i] * kMicrosPerSecond, values[i]);
  }
}

}  // namespace opass::obs
