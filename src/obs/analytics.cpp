#include "obs/analytics.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace opass::obs {

namespace {

/// Stragglers over one finish-time vector. `chunks_of(id)` returns the
/// element's (io_time, chunk) pairs; the slowest max_causal_chunks survive.
template <typename ChunksOf>
std::vector<Straggler> find_stragglers(const std::vector<double>& finish, double p90,
                                       const StragglerOptions& options,
                                       ChunksOf&& chunks_of) {
  std::vector<Straggler> out;
  const double bar = options.lag_factor * p90;
  for (std::uint32_t id = 0; id < finish.size(); ++id) {
    if (!(finish[id] > bar)) continue;
    Straggler s;
    s.id = id;
    s.finish = finish[id];
    s.threshold = bar;
    std::vector<std::pair<double, dfs::ChunkId>> reads = chunks_of(id);
    std::sort(reads.begin(), reads.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;  // slowest first
      return a.second < b.second;
    });
    if (reads.size() > options.max_causal_chunks) reads.resize(options.max_causal_chunks);
    s.causal_chunks.reserve(reads.size());
    for (const auto& [io, chunk] : reads) s.causal_chunks.push_back(chunk);
    out.push_back(std::move(s));
  }
  return out;
}

double p90_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, 0.90);
}

}  // namespace

ImbalanceStats imbalance_stats(const std::vector<double>& samples) {
  ImbalanceStats out;
  out.count = samples.size();
  if (samples.empty()) return out;
  const Summary s = summarize(samples);
  out.mean = s.mean;
  out.max = s.max;
  if (s.mean > 0) {
    out.degree_of_imbalance = (s.max - s.mean) / s.mean;
    out.cv = s.stddev / s.mean;
    out.peak_over_mean = s.max / s.mean;
  }
  // Gini over the sorted sample: G = (2 * sum_i i*x_i) / (n * sum) - (n+1)/n
  // with 1-based ranks i. Exact for our small n; 0 for a zero-sum sample.
  if (s.sum > 0) {
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i)
      weighted += static_cast<double>(i + 1) * sorted[i];
    const double n = static_cast<double>(sorted.size());
    out.gini = std::max(0.0, 2.0 * weighted / (n * s.sum) - (n + 1.0) / n);
  }
  return out;
}

ExecutionAnalytics analyze_execution(const runtime::ExecutionResult& result,
                                     std::uint32_t node_count,
                                     StragglerOptions options) {
  OPASS_REQUIRE(options.lag_factor >= 1.0, "straggler lag factor must be >= 1");
  ExecutionAnalytics out;

  const std::vector<sim::ReadRecord>& records = result.trace.records();
  std::vector<double> served(node_count, 0);
  std::vector<double> node_finish(node_count, 0);
  for (const sim::ReadRecord& r : records) {
    OPASS_REQUIRE(r.serving_node < node_count, "trace references node out of range");
    served[r.serving_node] += static_cast<double>(r.bytes);
    node_finish[r.serving_node] = std::max(node_finish[r.serving_node], r.end_time);
  }
  out.serve_bytes = imbalance_stats(served);

  std::vector<double> process_finish(result.process_finish_time.begin(),
                                     result.process_finish_time.end());
  out.process_finish = imbalance_stats(process_finish);

  out.node_finish_p90 = p90_of(node_finish);
  out.process_finish_p90 = p90_of(process_finish);

  out.straggler_nodes = find_stragglers(
      node_finish, out.node_finish_p90, options, [&](std::uint32_t node) {
        std::vector<std::pair<double, dfs::ChunkId>> reads;
        for (const sim::ReadRecord& r : records)
          if (r.serving_node == node) reads.emplace_back(r.io_time(), r.chunk);
        return reads;
      });
  out.straggler_processes = find_stragglers(
      process_finish, out.process_finish_p90, options, [&](std::uint32_t process) {
        std::vector<std::pair<double, dfs::ChunkId>> reads;
        for (const sim::ReadRecord& r : records)
          if (r.process == process) reads.emplace_back(r.io_time(), r.chunk);
        return reads;
      });
  return out;
}

}  // namespace opass::obs
