// Per-node hotspot report: which storage nodes served how much, how skewed
// the load is, and (when a cluster is supplied) how busy each disk was.
//
// This is the paper's serve-imbalance analysis (Figs. 1, 8, 10) packaged as
// a reusable report: nodes ranked by bytes served, with Jain's fairness
// index and max/mean, max/min ratios summarizing the skew that remote and
// imbalanced access induce. The CLI prints it under `--hotspots`; tests use
// it to check that observed imbalance ordering matches the planner's
// assignment_stats prediction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "dfs/types.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace opass::obs {

/// One node's share of the serving load.
struct NodeHotspot {
  dfs::NodeId node = 0;
  Bytes bytes_served = 0;          ///< payload bytes this node's disk served
  std::uint32_t ops_served = 0;    ///< chunk reads this node served
  std::uint32_t local_ops = 0;     ///< of those, reads by a co-located process
  Seconds disk_busy = 0;           ///< disk busy seconds (0 without a cluster)
  std::uint32_t disk_peak_load = 0;  ///< peak concurrent transfers (ditto)

  /// Fraction of this node's served ops that were local; 0 when idle.
  double local_fraction() const {
    return ops_served ? static_cast<double>(local_ops) / ops_served : 0.0;
  }
};

/// The full report: per-node rows plus skew summaries.
struct HotspotReport {
  /// Rows sorted by bytes_served descending (ties broken by node id), so
  /// rows.front() is the hottest node.
  std::vector<NodeHotspot> rows;
  Bytes total_bytes = 0;
  double jain_index = 0;     ///< Jain fairness of bytes_served; 1 = balanced
  double max_over_mean = 0;  ///< hottest node vs the average
  double max_over_min = 0;   ///< hottest vs coldest (0 when a node served 0)

  /// Render as an aligned ASCII table with the summary line, for terminals.
  std::string render() const;
};

/// Reduce a trace to the report. `node_count` sizes the per-node rows; pass
/// `cluster` to also fill the disk columns (busy time, peak load) from the
/// simulator's resource accounting.
HotspotReport hotspot_report(const sim::TraceRecorder& trace, std::uint32_t node_count,
                             const sim::Cluster* cluster = nullptr);

/// Render the worker pool's per-lane utilization as an ASCII table: chunks
/// executed and busy wall-clock milliseconds per lane, plus the batch/chunk
/// totals. Lane-chunk counts are deterministic for a fixed thread count
/// (static assignment); busy times are host wall clock and vary run to run —
/// terminal diagnostics only, never written to a determinism-checked
/// artifact. Read when the pool is idle (after the runs it served).
std::string pool_lane_report(const ThreadPool& pool);

}  // namespace opass::obs
