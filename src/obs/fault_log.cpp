#include "obs/fault_log.hpp"

namespace opass::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

std::string describe(const sim::FaultEvent& event) {
  const std::string kind = sim::fault_kind_name(event.kind);
  switch (event.kind) {
    case sim::FaultKind::kSlow:
      return kind + " node " + std::to_string(event.node) + " x" +
             std::to_string(event.factor);
    case sim::FaultKind::kJoin:
      return kind + " rack " + std::to_string(event.rack);
    case sim::FaultKind::kRebalance:
      return kind + " tolerance " + std::to_string(event.tolerance);
    case sim::FaultKind::kCrash:
    case sim::FaultKind::kRestore:
    case sim::FaultKind::kDecommission:
      return kind + " node " + std::to_string(event.node);
  }
  return kind;
}

}  // namespace

FaultEventLog::FaultEventLog(TimelineRecorder* recorder) : recorder_(recorder) {
  if (recorder_ != nullptr) {
    dead_nodes_ = recorder_->add_level_series("timeline.faults.dead_nodes");
    copy_rate_ = recorder_->add_rate_series("timeline.faults.rereplication_rate");
  }
}

void FaultEventLog::on_fault(Seconds now, const sim::FaultEvent& event) {
  entries_.push_back({now, describe(event)});
  if (recorder_ != nullptr && event.kind == sim::FaultKind::kCrash)
    recorder_->record_level(dead_nodes_, now, static_cast<double>(++dead_));
}

void FaultEventLog::on_detection(Seconds now, dfs::NodeId node) {
  entries_.push_back({now, "detected node " + std::to_string(node) + " dead"});
}

void FaultEventLog::on_copy(Seconds now, dfs::ChunkId /*chunk*/, dfs::NodeId /*src*/,
                            dfs::NodeId /*dst*/, Bytes bytes) {
  ++copies_;
  copied_bytes_ += bytes;
  if (recorder_ != nullptr)
    recorder_->record_rate(copy_rate_, now, static_cast<double>(bytes));
}

void FaultEventLog::on_recovery_complete(Seconds now, dfs::NodeId node) {
  entries_.push_back({now, node == dfs::kInvalidNode
                               ? std::string("rebalance complete")
                               : "recovery of node " + std::to_string(node) + " complete"});
}

void FaultEventLog::add_instants(ChromeTraceBuilder& builder, std::uint32_t pid) const {
  for (const Entry& e : entries_)
    builder.add_instant(pid, e.label, e.at * kMicrosPerSecond);
}

}  // namespace opass::obs
