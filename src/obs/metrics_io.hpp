// Metric sinks: JSON and CSV serialization of a MetricsRegistry.
//
// Determinism contract: the default export includes only metrics tagged
// Determinism::kDeterministic, iterates in registration order, and formats
// every double with one fixed printf spec — so a seeded run writes
// byte-identical files on every execution and on every machine (the property
// the `cli_metrics_deterministic` ctest entry asserts). Wall-clock metrics
// appear only when ExportOptions::include_wall_clock is set, and such files
// are explicitly not byte-stable.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace opass::obs {

/// Outcome of a file write. Returned (not thrown) because a missing
/// directory or full disk on `--metrics-out` is an operator error, not a
/// programming error; callers must look at it, hence [[nodiscard]].
struct [[nodiscard]] IoStatus {
  bool ok = true;
  std::string message;  ///< empty on success, reason otherwise

  explicit operator bool() const { return ok; }
};

/// Serialization knobs (options-last on every entry point).
struct ExportOptions {
  /// Also emit Determinism::kWallClock metrics. Off by default so the
  /// output is byte-identical across runs of the same seed.
  bool include_wall_clock = false;
};

/// Serialize as a JSON document:
///   {"schema": 1, "metrics": [{"name": ..., "kind": ..., ...}, ...]}
/// Counters carry an integer "value", gauges a double "value", histograms
/// "count"/"sum"/"min"/"max" plus a "buckets" array of {"le", "count"} pairs
/// and an "overflow" count. Ends with a trailing newline.
std::string to_json(const MetricsRegistry& registry, ExportOptions options = {});

/// Serialize as CSV with header `name,kind,value`. Histograms flatten into
/// one row per component: `<name>.count`, `<name>.sum`, `<name>.min`,
/// `<name>.max`, `<name>.le_<bound>` per bucket and `<name>.overflow`.
/// Names containing commas, quotes or newlines are quoted per RFC 4180.
std::string to_csv(const MetricsRegistry& registry, ExportOptions options = {});

/// Write `content` to `path`, overwriting. Fails (with a message naming the
/// path) instead of aborting when the path is not writable.
IoStatus write_file(const std::string& path, const std::string& content);

/// Serialize and write in one step: CSV when `path` ends in ".csv", JSON
/// otherwise.
IoStatus write_metrics(const MetricsRegistry& registry, const std::string& path,
                       ExportOptions options = {});

/// The fixed double format shared by every deterministic sink ("%.9g",
/// with "-0" normalized to "0"). Exposed so other exporters (the Chrome
/// trace writer, bench JSON embedding) format identically.
std::string format_double(double value);

}  // namespace opass::obs
