#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"

namespace opass::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  OPASS_CHECK(false, "unhandled MetricKind");
}

Metric& MetricsRegistry::get_or_create(const std::string& name, MetricKind kind,
                                       Determinism determinism) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Metric& m = metrics_[it->second];
    OPASS_REQUIRE(m.kind == kind, "metric re-touched with a different kind");
    OPASS_REQUIRE(m.determinism == determinism,
                  "metric re-touched with a different determinism tag");
    return m;
  }
  index_.emplace(name, metrics_.size());
  Metric m;
  m.name = name;
  m.kind = kind;
  m.determinism = determinism;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

void MetricsRegistry::counter_add(const std::string& name, std::uint64_t delta) {
  get_or_create(name, MetricKind::kCounter, Determinism::kDeterministic).counter += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value,
                                Determinism determinism) {
  get_or_create(name, MetricKind::kGauge, determinism).gauge = value;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> upper_bounds) {
  OPASS_REQUIRE(!upper_bounds.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < upper_bounds.size(); ++i)
    OPASS_REQUIRE(upper_bounds[i - 1] < upper_bounds[i],
                  "histogram bounds must be strictly ascending");
  Metric& m =
      get_or_create(name, MetricKind::kHistogram, Determinism::kDeterministic);
  if (!m.histogram.buckets.empty()) {
    OPASS_REQUIRE(m.histogram.upper_bounds == upper_bounds,
                  "histogram re-defined with different bounds");
    return;
  }
  m.histogram.upper_bounds = std::move(upper_bounds);
  m.histogram.buckets.assign(m.histogram.upper_bounds.size() + 1, 0);
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  const auto it = index_.find(name);
  OPASS_REQUIRE(it != index_.end(), "observe() on an undefined histogram");
  Metric& m = metrics_[it->second];
  OPASS_REQUIRE(m.kind == MetricKind::kHistogram, "observe() on a non-histogram metric");
  HistogramData& h = m.histogram;
  std::size_t bucket = h.upper_bounds.size();  // overflow unless a bound fits
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (sample <= h.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h.buckets[bucket];
  if (h.count == 0) {
    h.min = sample;
    h.max = sample;
  } else {
    h.min = std::min(h.min, sample);
    h.max = std::max(h.max, sample);
  }
  ++h.count;
  h.sum += sample;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return index_.find(name) != index_.end();
}

const Metric& MetricsRegistry::at(const std::string& name) const {
  const auto it = index_.find(name);
  OPASS_REQUIRE(it != index_.end(), "unknown metric name");
  return metrics_[it->second];
}

void MetricsRegistry::clear() {
  metrics_.clear();
  index_.clear();
}

ScopedWallTimer::ScopedWallTimer(MetricsRegistry& registry, std::string name)
    : registry_(registry), name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

ScopedWallTimer::~ScopedWallTimer() {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  registry_.gauge_set(name_, ms, Determinism::kWallClock);
}

void record_phase(MetricsRegistry& registry, const std::string& name, Seconds start,
                  Seconds end) {
  OPASS_REQUIRE(end >= start, "phase end precedes its start");
  registry.gauge_set(name, end - start, Determinism::kDeterministic);
}

}  // namespace opass::obs
