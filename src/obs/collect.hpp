// Collectors: reduce finished runs into MetricsRegistry entries.
//
// Each collector walks one subsystem's observable state (an execution's
// trace and spans, the cluster's resource accounting, a planner result, the
// dynamic scheduler's counters) and registers metrics under a caller-chosen
// name prefix — so a `--method=both` comparison can collect the same run
// shape twice under "baseline." and "opass." without collision.
//
// Naming scheme (the taxonomy DESIGN.md documents):
//   <prefix>.makespan_s, <prefix>.reads_total, <prefix>.bytes_local, ...
//   <prefix>.node.<i>.bytes_served      per-node series
//   <prefix>.process.<p>.finish_s      per-process series
//   <prefix>.io_time_s                 fixed-bucket histogram
//
// Everything registered here is deterministic except the planner wall
// timings, which collect_plan() tags Determinism::kWallClock.
#pragma once

#include <string>

#include "opass/dynamic_scheduler.hpp"
#include "opass/planner.hpp"
#include "opass/service.hpp"
#include "runtime/executor.hpp"
#include "sim/cluster.hpp"
#include "obs/metrics.hpp"

namespace opass {
class ThreadPool;
}

namespace opass::obs {

/// Bucket bounds (seconds) of the per-read I/O-time histogram, spanning
/// sub-second local reads up to heavily queued remote reads.
const std::vector<double>& io_time_bounds();

/// Reduce one execution: totals (reads, bytes, local/remote split), the
/// makespan, the per-read I/O-time histogram, per-node served bytes/ops and
/// per-process finish/stall times. `node_count` sizes the per-node series.
void collect_execution(MetricsRegistry& registry, const runtime::ExecutionResult& result,
                       std::uint32_t node_count, const std::string& prefix = "executor");

/// Reduce the cluster's resource accounting: per-node disk busy seconds,
/// peak concurrent transfers, head-thrash degradation joins and admission
/// queue statistics.
void collect_cluster(MetricsRegistry& registry, const sim::Cluster& cluster,
                     const std::string& prefix = "cluster");

/// Reduce a planner result: match/fill counters, locality byte counts, and
/// the facade's wall timings (tagged wall-clock, excluded from deterministic
/// exports).
void collect_plan(MetricsRegistry& registry, const core::PlanResult& plan,
                  const std::string& prefix = "planner");

/// Reduce the dynamic scheduler's dispatch counters: guideline-list hits,
/// steals and the steal locality hit rate.
void collect_dynamic(MetricsRegistry& registry, const core::OpassDynamicSource& source,
                     const std::string& prefix = "dynamic");

/// Reduce a planning service's lifetime counters: job/task totals, the
/// match-vs-fill split, batch shape extremes, and each tenant's weight and
/// cumulative charged locality bytes.
void collect_service(MetricsRegistry& registry, const core::PlannerService& service,
                     const std::string& prefix = "service");

/// Reduce a worker pool's execution profile (DESIGN.md §12): lane count,
/// batch/chunk totals and per-lane busy time and chunk counts. Everything is
/// registered as a gauge tagged Determinism::kWallClock — lane sharding
/// depends on the lane count and busy times on the host — so default
/// (deterministic) exports stay byte-stable across thread counts.
void collect_thread_pool(MetricsRegistry& registry, const ThreadPool& pool,
                         const std::string& prefix = "pool");

}  // namespace opass::obs
