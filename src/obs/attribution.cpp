#include "obs/attribution.hpp"

#include <algorithm>
#include <tuple>

#include "common/require.hpp"
#include "obs/metrics_io.hpp"

namespace opass::obs {

namespace {

std::string i64(std::int64_t v) { return std::to_string(v); }
std::string u64(std::uint64_t v) { return std::to_string(v); }

/// Sentinel-aware id rendering: UINT32_MAX fields render as -1.
std::string opt_id(std::uint32_t v) {
  return v == UINT32_MAX ? std::string("-1") : std::to_string(v);
}

bool valid_method_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) return false;
  return true;
}

std::string attribution_json(const AttributionTotals& totals) {
  std::string out = "{\"total_ticks\": " + i64(totals.total_ticks) + ", \"kinds\": {";
  for (std::size_t k = 0; k < kAttrKindCount; ++k) {
    if (k) out += ", ";
    out += std::string("\"") + attr_kind_name(static_cast<AttrKind>(k)) +
           "\": " + i64(totals.kind_ticks[k]);
  }
  out += "}, \"nodes\": {";
  bool first = true;
  for (std::size_t n = 0; n < totals.node_ticks.size(); ++n) {
    if (totals.node_ticks[n] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + u64(n) + "\": " + i64(totals.node_ticks[n]);
  }
  out += "}}";
  return out;
}

}  // namespace

void AttributionTotals::add_slice(const AttrSlice& slice) {
  kind_ticks[static_cast<std::size_t>(slice.kind)] += slice.duration_ticks();
  if (slice.node != dfs::kInvalidNode && slice.node < node_ticks.size())
    node_ticks[slice.node] += slice.duration_ticks();
}

void AttributionTotals::add_span(const Span& span) {
  total_ticks += span.duration_ticks();
  if (span.breakdown.empty()) {
    kind_ticks[static_cast<std::size_t>(AttrKind::kOther)] += span.duration_ticks();
    return;
  }
  for (const AttrSlice& s : span.breakdown) add_slice(s);
}

AttributionTotals attribute_spans(const SpanLog& log, std::uint32_t node_count) {
  AttributionTotals totals;
  totals.node_ticks.assign(node_count, 0);
  // Top-level spans only: a read span's slices already appear inside its
  // parent task's tiling, so counting children would double-charge.
  for (const Span& s : log.spans())
    if (s.parent == kNoSpan) totals.add_span(s);
  return totals;
}

CriticalPath critical_path(const SpanLog& log, std::uint32_t node_count) {
  CriticalPath cp;
  cp.blame.node_ticks.assign(node_count, 0);
  const std::vector<Span>& spans = log.spans();

  // Per-process task-span chains in time order, plus each task span's
  // position in its chain.
  std::uint32_t max_process = 0;
  for (const Span& s : spans)
    if (s.kind == SpanKind::kTask) max_process = std::max(max_process, s.process);
  std::vector<std::vector<std::uint32_t>> chains(
      spans.empty() ? 0 : static_cast<std::size_t>(max_process) + 1);
  for (const Span& s : spans)
    if (s.kind == SpanKind::kTask) chains[s.process].push_back(s.id);
  for (auto& chain : chains)
    std::sort(chain.begin(), chain.end(), [&](std::uint32_t a, std::uint32_t b) {
      return std::tie(spans[a].start_ticks, spans[a].end_ticks, a) <
             std::tie(spans[b].start_ticks, spans[b].end_ticks, b);
    });
  std::vector<std::uint32_t> pos(spans.size(), 0);
  bool any = false;
  for (const auto& chain : chains)
    for (std::uint32_t i = 0; i < chain.size(); ++i) {
      pos[chain[i]] = i;
      any = true;
    }
  if (!any) return cp;

  // Task spans sorted by (end, process, id): the wave-blocker lookup — "who
  // finished exactly when this span started" — and its deterministic
  // tie-break fall out of one lower_bound.
  struct ByEnd {
    std::int64_t end;
    std::uint32_t process;
    std::uint32_t id;
  };
  std::vector<ByEnd> by_end;
  for (const auto& chain : chains)
    for (std::uint32_t id : chain) by_end.push_back({spans[id].end_ticks, spans[id].process, id});
  std::sort(by_end.begin(), by_end.end(), [](const ByEnd& a, const ByEnd& b) {
    return std::tie(a.end, a.process, a.id) < std::tie(b.end, b.process, b.id);
  });

  // Start at the last-finishing task span (ties: lowest process, lowest id).
  std::uint32_t cur = kNoSpan;
  for (const ByEnd& e : by_end)
    if (cur == kNoSpan || e.end > spans[cur].end_ticks) cur = e.id;
  for (const ByEnd& e : by_end)
    if (e.end == spans[cur].end_ticks) {
      cur = e.id;  // sorted ascending, so the first hit is the tie-winner
      break;
    }

  // Backward walk. `visited` guards against cycles through zero-duration
  // spans (end == start == another zero span's boundary).
  std::vector<char> visited(spans.size(), 0);
  std::vector<CriticalPath::Step> rev;
  while (true) {
    visited[cur] = 1;
    rev.push_back({cur, spans[cur].start_ticks, spans[cur].end_ticks});
    const Span& c = spans[cur];
    const std::int64_t start = c.start_ticks;
    const auto& chain = chains[c.process];
    const std::uint32_t prev =
        pos[cur] > 0 ? chain[pos[cur] - 1] : kNoSpan;
    // 1. Same process, chained exactly: the previous task released this one.
    if (prev != kNoSpan && !visited[prev] && spans[prev].end_ticks == start) {
      cur = prev;
      continue;
    }
    // 2. A task on any process finished exactly at our start: the BSP wave
    // blocker (release_wave runs synchronously from the last arriver).
    auto it = std::lower_bound(
        by_end.begin(), by_end.end(), start,
        [](const ByEnd& e, std::int64_t t) { return e.end < t; });
    std::uint32_t blocker = kNoSpan;
    for (; it != by_end.end() && it->end == start; ++it)
      if (!visited[it->id]) {
        blocker = it->id;
        break;
      }
    if (blocker != kNoSpan) {
      cur = blocker;
      continue;
    }
    // 3. Same process with a gap: cover it with a synthetic idle step so the
    // path stays gap-free (the gap is real wait — retry windows, admission).
    if (prev != kNoSpan && !visited[prev] && spans[prev].end_ticks < start) {
      rev.push_back({kNoSpan, spans[prev].end_ticks, start});
      cur = prev;
      continue;
    }
    break;  // 4. Nothing precedes us: the path's origin.
  }
  std::reverse(rev.begin(), rev.end());
  cp.steps = std::move(rev);

  for (const CriticalPath::Step& step : cp.steps) {
    if (step.span != kNoSpan) {
      cp.blame.add_span(spans[step.span]);
    } else {
      cp.blame.total_ticks += step.end_ticks - step.start_ticks;
      cp.blame.kind_ticks[static_cast<std::size_t>(AttrKind::kOther)] +=
          step.end_ticks - step.start_ticks;
    }
  }
  // The chain invariant the whole analysis rests on: steps tile the path.
  for (std::size_t i = 1; i < cp.steps.size(); ++i)
    OPASS_CHECK(cp.steps[i].start_ticks == cp.steps[i - 1].end_ticks,
                "critical-path steps must chain exactly");
  return cp;
}

void SpanDocBuilder::add_method(const std::string& name, const SpanLog& log,
                                std::uint32_t node_count) {
  OPASS_REQUIRE(valid_method_name(name), "method name must be [a-z0-9_]+");
  Method m;
  m.name = name;
  m.log = &log;
  m.node_count = node_count;
  m.totals = attribute_spans(log, node_count);
  m.path = critical_path(log, node_count);
  methods_.push_back(std::move(m));
}

const CriticalPath& SpanDocBuilder::path(std::size_t index) const {
  OPASS_REQUIRE(index < methods_.size(), "method index out of range");
  return methods_[index].path;
}

std::string SpanDocBuilder::spans_json() const {
  std::string out = "{\"schema\": 1, \"ticks_per_second\": 1000000000, \"methods\": [";
  for (std::size_t mi = 0; mi < methods_.size(); ++mi) {
    const Method& m = methods_[mi];
    out += mi ? ",\n" : "\n";
    out += "{\"name\": \"" + m.name + "\"";
    out += ", \"makespan_ticks\": " + i64(m.log->max_end_ticks());
    out += ", \"span_count\": " + u64(m.log->size());
    out += ", \"attribution\": " + attribution_json(m.totals);
    out += ", \"spans\": [";
    const auto& spans = m.log->spans();
    for (std::size_t si = 0; si < spans.size(); ++si) {
      const Span& s = spans[si];
      out += si ? ",\n  " : "\n  ";
      out += "{\"id\": " + u64(s.id) + ", \"parent\": " + opt_id(s.parent) +
             ", \"kind\": \"" + span_kind_name(s.kind) + "\", \"name\": \"" + s.name +
             "\", \"process\": " + u64(s.process) + ", \"task\": " + opt_id(s.task) +
             ", \"node\": " + opt_id(s.node) + ", \"server\": " + opt_id(s.server) +
             ", \"chunk\": " + opt_id(s.chunk) + ", \"bytes\": " + u64(s.bytes) +
             ", \"start_ticks\": " + i64(s.start_ticks) +
             ", \"end_ticks\": " + i64(s.end_ticks) + ", \"breakdown\": [";
      for (std::size_t bi = 0; bi < s.breakdown.size(); ++bi) {
        const AttrSlice& b = s.breakdown[bi];
        if (bi) out += ", ";
        out += std::string("{\"kind\": \"") + attr_kind_name(b.kind) +
               "\", \"node\": " + opt_id(b.node) +
               ", \"start_ticks\": " + i64(b.start_ticks) +
               ", \"end_ticks\": " + i64(b.end_ticks) + "}";
      }
      out += "]}";
    }
    out += "\n]}";
  }
  out += "\n]}\n";
  return out;
}

std::string SpanDocBuilder::critical_path_json() const {
  std::string out = "{\"schema\": 1, \"ticks_per_second\": 1000000000, \"methods\": [";
  for (std::size_t mi = 0; mi < methods_.size(); ++mi) {
    const Method& m = methods_[mi];
    const auto& spans = m.log->spans();
    out += mi ? ",\n" : "\n";
    out += "{\"name\": \"" + m.name + "\"";
    out += ", \"makespan_ticks\": " + i64(m.log->max_end_ticks());
    out += ", \"blame\": " + attribution_json(m.path.blame);
    out += ", \"steps\": [";
    for (std::size_t si = 0; si < m.path.steps.size(); ++si) {
      const CriticalPath::Step& step = m.path.steps[si];
      out += si ? ",\n  " : "\n  ";
      if (step.span == kNoSpan) {
        out += "{\"span\": -1, \"name\": \"idle\", \"process\": -1, \"task\": -1";
      } else {
        const Span& s = spans[step.span];
        out += "{\"span\": " + u64(step.span) + ", \"name\": \"" + s.name +
               "\", \"process\": " + u64(s.process) + ", \"task\": " + opt_id(s.task);
      }
      out += ", \"start_ticks\": " + i64(step.start_ticks) +
             ", \"end_ticks\": " + i64(step.end_ticks) + "}";
    }
    out += "\n]}";
  }
  out += "\n]}\n";
  return out;
}

std::string SpanDocBuilder::critical_path_text() const {
  std::string out;
  for (const Method& m : methods_) {
    const std::int64_t makespan = m.log->max_end_ticks();
    out += "== " + m.name + " ==\n";
    out += "makespan: " + format_double(static_cast<double>(makespan) * 1e-9) +
           " s (" + i64(makespan) + " ticks)\n";
    out += "critical path: " + u64(m.path.steps.size()) + " steps covering " +
           format_double(static_cast<double>(m.path.blame.total_ticks) * 1e-9) + " s\n";
    out += "blame:\n";
    // Buckets in descending tick order, ties by enum order; zeros omitted.
    std::vector<std::size_t> kinds;
    for (std::size_t k = 0; k < kAttrKindCount; ++k)
      if (m.path.blame.kind_ticks[k] > 0) kinds.push_back(k);
    std::stable_sort(kinds.begin(), kinds.end(), [&](std::size_t a, std::size_t b) {
      return m.path.blame.kind_ticks[a] > m.path.blame.kind_ticks[b];
    });
    for (std::size_t k : kinds) {
      const std::int64_t t = m.path.blame.kind_ticks[k];
      const double pct = m.path.blame.total_ticks > 0
                             ? 100.0 * static_cast<double>(t) /
                                   static_cast<double>(m.path.blame.total_ticks)
                             : 0.0;
      out += std::string("  ") + attr_kind_name(static_cast<AttrKind>(k)) + " " +
             format_double(static_cast<double>(t) * 1e-9) + " s (" +
             format_double(pct) + "%)\n";
    }
    std::vector<std::size_t> nodes;
    for (std::size_t n = 0; n < m.path.blame.node_ticks.size(); ++n)
      if (m.path.blame.node_ticks[n] > 0) nodes.push_back(n);
    std::stable_sort(nodes.begin(), nodes.end(), [&](std::size_t a, std::size_t b) {
      return m.path.blame.node_ticks[a] > m.path.blame.node_ticks[b];
    });
    if (nodes.size() > 8) nodes.resize(8);
    if (!nodes.empty()) {
      out += "blamed nodes:\n";
      for (std::size_t n : nodes)
        out += "  node " + u64(n) + " " +
               format_double(static_cast<double>(m.path.blame.node_ticks[n]) * 1e-9) +
               " s\n";
    }
  }
  return out;
}

void add_critical_path_flows(ChromeTraceBuilder& trace, const SpanLog& log,
                             const CriticalPath& cp, std::uint32_t pid) {
  const std::vector<Span>& spans = log.spans();
  std::uint64_t flow_id = 0;
  std::uint32_t prev = kNoSpan;
  for (const CriticalPath::Step& step : cp.steps) {
    if (step.span == kNoSpan) continue;  // idle gaps stay within one track
    const Span& s = spans[step.span];
    if (prev != kNoSpan && spans[prev].process != s.process) {
      ++flow_id;
      trace.add_flow_step(pid, spans[prev].process,
                          static_cast<double>(spans[prev].end_ticks) * 1e-3, 's',
                          flow_id);
      trace.add_flow_step(pid, s.process, static_cast<double>(s.start_ticks) * 1e-3,
                          'f', flow_id);
    }
    prev = step.span;
  }
}

}  // namespace opass::obs
