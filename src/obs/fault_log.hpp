// Fault-lifecycle observability: turns sim::FaultProbe callbacks into
// labeled event entries, Chrome-trace instant markers, and timeline series.
//
// The injector stays metric-blind (DESIGN.md §8); this adapter records every
// transition — scripted fault applied, dead-node detection, recovery drive
// completed — with its virtual timestamp, accumulates re-replication traffic
// counters, and (when a TimelineRecorder is attached) maintains
// `timeline.faults.dead_nodes` (level) and
// `timeline.faults.rereplication_rate` (bytes/second of recovery copies), so
// failure timing lines up with the serve-rate collapse it causes.
//
// Determinism: entries are appended in event order by the single-threaded
// simulation, so a seeded run reproduces the log byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/timeline.hpp"
#include "sim/fault_plan.hpp"

namespace opass::obs {

/// Records the fault/recovery transitions of one run.
class FaultEventLog final : public sim::FaultProbe {
 public:
  struct Entry {
    Seconds at = 0;
    std::string label;  ///< e.g. "crash node 17", "detected node 17 dead"
  };

  /// With a recorder, registers the timeline.faults.* series up front (the
  /// recorder requires every series before its first sample). The recorder
  /// is borrowed and must outlive the log.
  explicit FaultEventLog(TimelineRecorder* recorder = nullptr);

  void on_fault(Seconds now, const sim::FaultEvent& event) override;
  void on_detection(Seconds now, dfs::NodeId node) override;
  void on_copy(Seconds now, dfs::ChunkId chunk, dfs::NodeId src, dfs::NodeId dst,
               Bytes bytes) override;
  void on_recovery_complete(Seconds now, dfs::NodeId node) override;

  /// Transition entries in event order (copies are counted, not listed).
  const std::vector<Entry>& entries() const { return entries_; }

  std::uint32_t copy_count() const { return copies_; }
  Bytes copied_bytes() const { return copied_bytes_; }

  /// Emit every entry as a global instant marker under `pid`.
  void add_instants(ChromeTraceBuilder& builder, std::uint32_t pid = 0) const;

 private:
  TimelineRecorder* recorder_;
  TimelineRecorder::SeriesId dead_nodes_ = 0, copy_rate_ = 0;
  std::vector<Entry> entries_;
  std::uint32_t dead_ = 0;
  std::uint32_t copies_ = 0;
  Bytes copied_bytes_ = 0;
};

}  // namespace opass::obs
