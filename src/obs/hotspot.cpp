#include "obs/hotspot.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace opass::obs {

HotspotReport hotspot_report(const sim::TraceRecorder& trace, std::uint32_t node_count,
                             const sim::Cluster* cluster) {
  OPASS_REQUIRE(node_count > 0, "report needs at least one node");
  HotspotReport report;
  report.rows.resize(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) report.rows[n].node = n;

  for (const sim::ReadRecord& r : trace.records()) {
    OPASS_REQUIRE(r.serving_node < node_count, "record references a node out of range");
    NodeHotspot& row = report.rows[r.serving_node];
    row.bytes_served += r.bytes;
    ++row.ops_served;
    if (r.local) ++row.local_ops;
    report.total_bytes += r.bytes;
  }
  if (cluster != nullptr) {
    OPASS_REQUIRE(cluster->node_count() >= node_count,
                  "cluster smaller than the report's node count");
    for (std::uint32_t n = 0; n < node_count; ++n) {
      report.rows[n].disk_busy = cluster->disk_busy_time(n);
      report.rows[n].disk_peak_load = cluster->disk_peak_load(n);
    }
  }

  std::vector<double> served;
  served.reserve(node_count);
  for (const NodeHotspot& row : report.rows)
    served.push_back(static_cast<double>(row.bytes_served));
  report.jain_index = jain_fairness(served);
  const Summary s = summarize(served);
  report.max_over_mean = s.mean > 0 ? s.max / s.mean : 0.0;
  report.max_over_min = s.max_over_min();

  std::stable_sort(report.rows.begin(), report.rows.end(),
                   [](const NodeHotspot& a, const NodeHotspot& b) {
                     if (a.bytes_served != b.bytes_served)
                       return a.bytes_served > b.bytes_served;
                     return a.node < b.node;
                   });
  return report;
}

std::string HotspotReport::render() const {
  Table table({"node", "served MiB", "ops", "local %", "disk busy s", "peak load"});
  for (const NodeHotspot& row : rows) {
    table.add_row({Table::integer(row.node), Table::num(to_mib(row.bytes_served)),
                   Table::integer(row.ops_served),
                   Table::num(row.local_fraction() * 100.0, 1),
                   Table::num(row.disk_busy), Table::integer(row.disk_peak_load)});
  }
  std::string out = table.render("per-node serving hotspots (hottest first)");
  out += "total " + Table::num(to_mib(total_bytes)) + " MiB | jain " +
         Table::num(jain_index, 4) + " | max/mean " + Table::num(max_over_mean) +
         " | max/min " + Table::num(max_over_min) + "\n";
  return out;
}

std::string pool_lane_report(const ThreadPool& pool) {
  Table table({"lane", "chunks", "busy ms"});
  double total_busy = 0;
  for (std::uint32_t lane = 0; lane < pool.thread_count(); ++lane) {
    total_busy += pool.lane_busy_ms(lane);
    table.add_row({Table::integer(lane),
                   Table::integer(static_cast<long long>(pool.lane_chunks(lane))),
                   Table::num(pool.lane_busy_ms(lane), 1)});
  }
  std::string out = table.render("worker-pool lanes (lane 0 = caller)");
  out += "batches " + Table::integer(static_cast<long long>(pool.batches())) +
         " | chunks " + Table::integer(static_cast<long long>(pool.chunks_executed())) +
         " | busy " + Table::num(total_busy, 1) + " ms\n";
  return out;
}

}  // namespace opass::obs
