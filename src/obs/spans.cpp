#include "obs/spans.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace opass::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTask: return "task";
    case SpanKind::kRead: return "read";
    case SpanKind::kWait: return "wait";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kPlan: return "plan";
  }
  return "?";
}

const char* attr_kind_name(AttrKind kind) {
  switch (kind) {
    case AttrKind::kQueueWait: return "queue_wait";
    case AttrKind::kSeek: return "seek";
    case AttrKind::kSrcDisk: return "src_disk";
    case AttrKind::kSrcNic: return "src_nic";
    case AttrKind::kDstNic: return "dst_nic";
    case AttrKind::kRackUplink: return "rack_uplink";
    case AttrKind::kRackDownlink: return "rack_downlink";
    case AttrKind::kStreamCap: return "stream_cap";
    case AttrKind::kDegraded: return "degraded";
    case AttrKind::kCompute: return "compute";
    case AttrKind::kBarrier: return "barrier";
    case AttrKind::kOther: return "other";
  }
  return "?";
}

bool valid_span_name(const std::string& name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool letter = c >= 'a' && c <= 'z';
    const bool tail = letter || (c >= '0' && c <= '9') || c == '_';
    if (seg_len == 0 ? !letter : !tail) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  return segments == 2;  // exactly three segments: layer.noun.verb
}

std::uint32_t SpanLog::add(Span span) {
  OPASS_REQUIRE(valid_span_name(span.name),
                "span name must be layer.noun.verb ([a-z0-9_], 3 segments)");
  OPASS_REQUIRE(span.end_ticks >= span.start_ticks, "span must not end before it starts");
  OPASS_REQUIRE(span.parent == kNoSpan || span.parent < spans_.size(),
                "span parent must be a previously added span");
  if (!span.breakdown.empty()) {
    // The reconciliation invariant: slices chain gap-free from the span's
    // start to its end, so their integer durations telescope exactly to the
    // span duration. This is what makes attribution sums trustworthy.
    std::int64_t cursor = span.start_ticks;
    for (const AttrSlice& s : span.breakdown) {
      OPASS_REQUIRE(s.start_ticks == cursor, "breakdown slices must chain gap-free");
      OPASS_REQUIRE(s.end_ticks >= s.start_ticks, "breakdown slice must not be negative");
      cursor = s.end_ticks;
    }
    OPASS_REQUIRE(cursor == span.end_ticks,
                  "breakdown must close exactly at the span end");
  }
  span.id = static_cast<std::uint32_t>(spans_.size());
  max_end_ticks_ = std::max(max_end_ticks_, span.end_ticks);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

namespace {

constexpr std::int64_t kNoBreakdown = -1;

/// Append a slice, merging into the previous one when kind and blamed node
/// match (water-filling can re-pin the same constraint across re-levels).
void push_slice(std::vector<AttrSlice>& slices, AttrKind kind, dfs::NodeId node,
                std::int64_t start, std::int64_t end) {
  if (end <= start) return;
  if (!slices.empty() && slices.back().kind == kind && slices.back().node == node &&
      slices.back().end_ticks == start) {
    slices.back().end_ticks = end;
    return;
  }
  slices.push_back({kind, node, start, end});
}

/// Was `node` running at reduced speed at tick `t`? Replays the cluster's
/// degrade/restore event log (chronological by construction); the last event
/// at or before `t` wins.
bool degraded_at(const std::vector<sim::SpeedChange>& changes, dfs::NodeId node,
                 std::int64_t t) {
  double factor = 1.0;
  for (const sim::SpeedChange& c : changes) {
    if (c.ticks > t) break;
    if (c.node == node) factor = c.factor;
  }
  return factor < 1.0;
}

/// Classify one binding-resource interval of a read's transfer into its
/// causal bucket. A binding resource owned by a degraded node is charged to
/// kDegraded — the slow node, not the hardware role, is the story there.
AttrSlice classify_interval(const sim::BindingInterval& bi, const sim::Cluster& cluster,
                            dfs::NodeId server) {
  AttrSlice s;
  s.start_ticks = bi.start_ticks;
  s.end_ticks = bi.end_ticks;
  if (bi.resource == sim::kCapBinding) {
    s.kind = AttrKind::kStreamCap;
    return s;
  }
  const sim::ResourceInfo info = cluster.resource_info(bi.resource);
  switch (info.role) {
    case sim::ResourceRole::kDisk:
    case sim::ResourceRole::kNicIn:
    case sim::ResourceRole::kNicOut:
      s.node = info.owner;
      if (degraded_at(cluster.speed_changes(), info.owner, bi.start_ticks)) {
        s.kind = AttrKind::kDegraded;
      } else if (info.role == sim::ResourceRole::kDisk) {
        s.kind = info.owner == server ? AttrKind::kSrcDisk : AttrKind::kOther;
      } else if (info.role == sim::ResourceRole::kNicOut) {
        s.kind = info.owner == server ? AttrKind::kSrcNic : AttrKind::kOther;
      } else {
        s.kind = AttrKind::kDstNic;
      }
      return s;
    case sim::ResourceRole::kRackUp:
      s.kind = AttrKind::kRackUplink;
      return s;
    case sim::ResourceRole::kRackDown:
      s.kind = AttrKind::kRackDownlink;
      return s;
  }
  return s;
}

/// Exact tiling of one read span [issue, end]: admission wait, positioning,
/// then the transfer's classified binding intervals. Defensive kOther gap
/// fill keeps the tiling invariant even for degenerate inputs (zero-byte
/// transfers have no intervals at all).
std::vector<AttrSlice> read_slices(const sim::ReadBreakdown& rb, const sim::Cluster& cluster,
                                   dfs::NodeId server) {
  std::vector<AttrSlice> slices;
  push_slice(slices, AttrKind::kQueueWait, server, rb.issue_ticks, rb.admit_ticks);
  push_slice(slices, AttrKind::kSeek, server, rb.admit_ticks, rb.transfer_start_ticks);
  std::int64_t cursor = rb.transfer_start_ticks;
  for (const sim::BindingInterval& bi : rb.transfer) {
    if (bi.start_ticks > cursor)
      push_slice(slices, AttrKind::kOther, dfs::kInvalidNode, cursor, bi.start_ticks);
    const AttrSlice c = classify_interval(bi, cluster, server);
    push_slice(slices, c.kind, c.node, c.start_ticks, c.end_ticks);
    cursor = std::max(cursor, bi.end_ticks);
  }
  if (rb.end_ticks > cursor)
    push_slice(slices, AttrKind::kOther, dfs::kInvalidNode, cursor, rb.end_ticks);
  return slices;
}

std::int64_t compute_ticks_of(const runtime::Task& task) {
  return task.compute_time > 0 ? std::llround(task.compute_time * 1e9) : 0;
}

}  // namespace

void append_execution_spans(SpanLog& log, const runtime::ExecutionResult& exec,
                            const std::vector<runtime::Task>& tasks,
                            const sim::Cluster& cluster) {
  const auto& records = exec.trace.records();
  const bool have_breakdowns = exec.read_breakdowns.size() == records.size();

  // Group read records under their task (ReadRecord::task), each task's
  // reads ordered by issue time (completion order equals issue order for the
  // sequential per-task reads; the sort makes it explicit).
  std::vector<std::vector<std::uint32_t>> task_reads(tasks.size());
  for (std::uint32_t i = 0; i < records.size(); ++i)
    if (records[i].task < task_reads.size()) task_reads[records[i].task].push_back(i);
  for (auto& reads : task_reads)
    std::stable_sort(reads.begin(), reads.end(), [&](std::uint32_t a, std::uint32_t b) {
      return records[a].issue_time < records[b].issue_time;
    });

  // Task spans per process, in start order (completion order interleaves
  // processes; spans of one process are disjoint except under prefetch).
  std::vector<runtime::TaskSpan> ordered = exec.task_spans;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const runtime::TaskSpan& a, const runtime::TaskSpan& b) {
                     if (a.process != b.process) return a.process < b.process;
                     if (a.start != b.start) return a.start < b.start;
                     return a.end < b.end;
                   });

  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const runtime::TaskSpan& ts = ordered[i];
    const dfs::NodeId node = static_cast<dfs::NodeId>(ts.process % cluster.node_count());
    const std::int64_t start = sim::to_ticks(ts.start);
    const std::int64_t end = sim::to_ticks(ts.end);

    // Gap to the previous task on this process: a wait span (BSP barrier
    // park or a dynamic-source retry window).
    if (i > 0 && ordered[i - 1].process == ts.process) {
      const std::int64_t prev_end = sim::to_ticks(ordered[i - 1].end);
      if (prev_end < start) {
        Span wait;
        wait.kind = SpanKind::kWait;
        wait.name = "exec.wave.wait";
        wait.process = ts.process;
        wait.node = node;
        wait.start_ticks = prev_end;
        wait.end_ticks = start;
        wait.breakdown.push_back({AttrKind::kBarrier, dfs::kInvalidNode, prev_end, start});
        log.add(std::move(wait));
      }
    }

    // Assemble the task's exact tiling from its reads' slices; abandoned
    // (single kOther slice) when reads overlap the span non-sequentially,
    // which is exactly the prefetch case.
    static const std::vector<std::uint32_t> kNoReads;
    const auto& reads = ts.task < task_reads.size() ? task_reads[ts.task] : kNoReads;
    std::vector<AttrSlice> slices;
    std::int64_t cursor = start;
    bool exact = true;
    for (std::uint32_t rec_idx : reads) {
      const sim::ReadRecord& rec = records[rec_idx];
      const std::int64_t r_start = have_breakdowns
                                       ? exec.read_breakdowns[rec_idx].issue_ticks
                                       : sim::to_ticks(rec.issue_time);
      const std::int64_t r_end = have_breakdowns ? exec.read_breakdowns[rec_idx].end_ticks
                                                 : sim::to_ticks(rec.end_time);
      if (r_start < cursor || r_end > end) {
        exact = false;
        break;
      }
      if (r_start > cursor)
        push_slice(slices, AttrKind::kOther, dfs::kInvalidNode, cursor, r_start);
      if (have_breakdowns) {
        for (const AttrSlice& s : read_slices(exec.read_breakdowns[rec_idx], cluster,
                                              rec.serving_node))
          push_slice(slices, s.kind, s.node, s.start_ticks, s.end_ticks);
      } else {
        push_slice(slices, AttrKind::kOther, rec.serving_node, r_start, r_end);
      }
      cursor = r_end;
    }
    if (exact && cursor <= end) {
      const std::int64_t residual = end - cursor;
      const std::int64_t compute =
          ts.task < tasks.size() ? compute_ticks_of(tasks[ts.task]) : 0;
      if (residual > 0) {
        // The residual after the last read is the compute phase; anything
        // beyond the declared compute time (± a rounding tick) is a
        // scheduling wait (the prefetch cycle join).
        if (residual <= compute + 1) {
          push_slice(slices, AttrKind::kCompute, dfs::kInvalidNode, cursor, end);
        } else {
          push_slice(slices, AttrKind::kOther, dfs::kInvalidNode, cursor, end - compute);
          push_slice(slices, AttrKind::kCompute, dfs::kInvalidNode, end - compute, end);
        }
      }
    } else {
      slices.clear();
      if (end > start) slices.push_back({AttrKind::kOther, dfs::kInvalidNode, start, end});
    }

    Span task_span;
    task_span.kind = SpanKind::kTask;
    task_span.name = "exec.task.run";
    task_span.process = ts.process;
    task_span.task = ts.task;
    task_span.node = node;
    task_span.start_ticks = start;
    task_span.end_ticks = end;
    task_span.breakdown = std::move(slices);
    const std::uint32_t task_id = log.add(std::move(task_span));

    for (std::uint32_t rec_idx : reads) {
      const sim::ReadRecord& rec = records[rec_idx];
      Span read;
      read.parent = task_id;
      read.kind = SpanKind::kRead;
      read.name = "exec.read.serve";
      read.process = rec.process;
      read.task = rec.task;
      read.node = rec.reader_node;
      read.server = rec.serving_node;
      read.chunk = rec.chunk;
      read.bytes = rec.bytes;
      if (have_breakdowns) {
        const sim::ReadBreakdown& rb = exec.read_breakdowns[rec_idx];
        read.start_ticks = rb.issue_ticks;
        read.end_ticks = rb.end_ticks;
        read.breakdown = read_slices(rb, cluster, rec.serving_node);
      } else {
        read.start_ticks = sim::to_ticks(rec.issue_time);
        read.end_ticks = sim::to_ticks(rec.end_time);
      }
      log.add(std::move(read));
    }
  }
}

void append_service_spans(SpanLog& log, const std::vector<core::JobStatus>& statuses) {
  for (const core::JobStatus& s : statuses) {
    if (s.state != core::JobState::kPlanned && s.state != core::JobState::kCompleted)
      continue;
    const std::int64_t arrival = sim::to_ticks(s.arrival);
    const std::int64_t planned = sim::to_ticks(s.planned_at);
    Span queue;
    queue.kind = SpanKind::kQueue;
    queue.name = "svc.job.queue";
    queue.process = static_cast<std::uint32_t>(s.tenant);
    queue.task = static_cast<std::uint32_t>(s.id);
    queue.start_ticks = arrival;
    queue.end_ticks = planned;
    if (planned > arrival)
      queue.breakdown.push_back({AttrKind::kQueueWait, dfs::kInvalidNode, arrival, planned});
    log.add(std::move(queue));

    Span plan;
    plan.kind = SpanKind::kPlan;
    plan.name = "svc.job.plan";
    plan.process = static_cast<std::uint32_t>(s.tenant);
    plan.task = static_cast<std::uint32_t>(s.id);
    plan.start_ticks = planned;
    plan.end_ticks = planned;
    log.add(std::move(plan));
  }
}

}  // namespace opass::obs
