// Self-contained run reports: one HTML file (inline SVG time-series charts +
// summary tables, no external assets) and a machine-readable timeline JSON.
//
// The HTML is the human-facing artifact of `opass_cli --report-html=...`: a
// section per method (baseline / opass) with the serve-rate, queue-depth and
// bytes-remaining charts side by side — the paper's Fig. 2/3 story at a
// glance — plus the imbalance analytics of obs/analytics.hpp. The JSON is
// the tooling-facing twin (`--timeline-out=...`): full series values plus
// the same analytics, consumed by tools/check_report.py and
// tools/bench_compare.py.
//
// Determinism contract: both renderers iterate methods in add order and
// series in registration order, and format every double through
// obs::format_double — a seeded run writes byte-identical artifacts (the
// `cli_report_deterministic` ctest entry asserts this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/spans.hpp"
#include "obs/timeline.hpp"

namespace opass::obs {

/// One method's finished run, ready to render.
struct MethodReport {
  /// Method label; must be [a-z0-9_]+ (it becomes HTML element ids).
  std::string name;
  /// Finished recorder of the run (borrowed; must outlive the builder).
  const TimelineRecorder* timeline = nullptr;
  ExecutionAnalytics analytics;
  Seconds makespan = 0;
  double local_fraction = 0;
  /// Optional causal span log of the run (borrowed; must outlive the
  /// builder). When set, the HTML gains a bottleneck-attribution section:
  /// per-bucket time shares and the top blamed nodes (obs/attribution.hpp).
  const SpanLog* spans = nullptr;
  std::uint32_t node_count = 0;  ///< sizes the per-node attribution sums
};

/// Accumulates per-method runs and renders the two artifacts.
class ReportBuilder {
 public:
  /// Add one method (rendered in add order). The recorder must be finished.
  void add_method(MethodReport method);

  std::size_t method_count() const { return methods_.size(); }

  /// Render the self-contained HTML page. Chart SVGs carry the ids
  /// `chart-<method>-serve-bytes`, `chart-<method>-queue-depth` and
  /// `chart-<method>-bytes-remaining`.
  std::string html() const;

  /// Render the timeline JSON document:
  ///   {"schema": 1, "methods": [{"name", "interval", "end_time",
  ///    "makespan", "local_fraction", "analytics": {...},
  ///    "series": [{"name", "kind", "values": [...]}, ...]}, ...]}
  /// Ends with a trailing newline.
  std::string timeline_json() const;

 private:
  std::vector<MethodReport> methods_;
};

/// Append the cluster-wide series of a finished recorder (names with exactly
/// three segments, e.g. timeline.cluster.serve_bytes_per_s) as Chrome
/// counter ("C") events under process group `pid`, one counter sample per
/// tick. Per-node / per-process series are skipped — the viewer's counter
/// tracks don't scale to hundreds of them.
void add_timeline_counters(ChromeTraceBuilder& trace, const TimelineRecorder& timeline,
                           std::uint32_t pid);

}  // namespace opass::obs
