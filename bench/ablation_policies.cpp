// Ablations over the design choices DESIGN.md calls out.
//
//  1. Replica-choice policy: how much imbalance could a smarter DFS-side
//     choice (least-loaded) recover *without* Opass — versus Opass itself.
//  2. Placement policy: Opass's gain as a function of layout skew (random vs
//     classic HDFS writer-local vs perfectly even round-robin). Round-robin
//     guarantees a full matching (Section IV-B's ideal case).
//  3. Full-matching rate: how often random layouts admit a full matching, by
//     cluster size — why the random-fill fallback exists.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

void ablate_replica_choice() {
  std::printf("Ablation 1: replica-choice policy (64 nodes, 640 chunks, baseline "
              "rank-interval assignment)\n\n");
  Table t({"replica choice", "avg I/O (s)", "max I/O (s)", "Jain fairness", "makespan (s)"});
  for (auto rc : {dfs::ReplicaChoice::kRandom, dfs::ReplicaChoice::kFirst,
                  dfs::ReplicaChoice::kLeastLoaded}) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 13;
    cfg.replica_choice = rc;
    const auto out = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
    t.add_row({dfs::replica_choice_name(rc), Table::num(out.io.mean, 2),
               Table::num(out.io.max, 2), Table::num(jain_fairness(out.served_mb), 3),
               Table::num(out.makespan, 1)});
  }
  {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 13;
    const auto out = exp::run_single_data(cfg, 640, exp::Method::kOpass);
    t.add_row({"(opass, random)", Table::num(out.io.mean, 2), Table::num(out.io.max, 2),
               Table::num(jain_fairness(out.served_mb), 3), Table::num(out.makespan, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("(least-loaded replica choice helps the baseline but cannot create\n"
              " locality; Opass dominates because local reads skip the network)\n\n");
}

void ablate_placement() {
  std::printf("Ablation 2: placement policy vs Opass gain (64 nodes, 640 chunks)\n\n");
  Table t({"placement", "base avg I/O", "opass avg I/O", "gain", "opass local %"});
  for (auto pk : {dfs::PlacementKind::kRandom, dfs::PlacementKind::kHdfsDefault,
                  dfs::PlacementKind::kRoundRobin}) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 14;
    cfg.placement = pk;
    const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
    const auto op = exp::run_single_data(cfg, 640, exp::Method::kOpass);
    t.add_row({dfs::placement_kind_name(pk), Table::num(base.io.mean, 2),
               Table::num(op.io.mean, 2), Table::num(base.io.mean / op.io.mean, 1) + "x",
               Table::num(100 * op.local_fraction, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("(round-robin placement admits a guaranteed full matching; random\n"
              " placement still reaches ~100%% locality via the max-flow matcher)\n\n");
}

void full_matching_rate() {
  std::printf("Ablation 3: full-matching rate vs chunks per process (64 nodes, r=3, "
              "40 random layouts each)\n\n");
  const std::uint32_t m = 64;
  Table t({"chunks/process", "full matchings", "avg locally matched %"});
  for (std::uint32_t per : {1u, 2u, 4u, 10u, 20u}) {
    int full = 0;
    double matched = 0;
    const int layouts = 40;
    for (int i = 0; i < layouts; ++i) {
      dfs::NameNode nn(dfs::Topology::single_rack(m), 3, kDefaultChunkSize);
      dfs::RandomPlacement policy;
      Rng rng(static_cast<std::uint64_t>(per) * 1000 + static_cast<std::uint64_t>(i));
      const auto tasks = workload::make_single_data_workload(nn, m * per, policy, rng);
      const auto placement = core::one_process_per_node(nn);
      const auto plan = core::plan({&nn, &tasks, &placement, &rng});
      if (plan.randomly_filled == 0) ++full;
      matched += 100.0 * plan.locally_matched / static_cast<double>(tasks.size());
    }
    t.add_row({Table::integer(per), Table::integer(full) + "/" + std::to_string(layouts),
               Table::num(matched / layouts, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("(full matchings get rarer as quotas shrink — with 1-2 chunks per process\n"
              " the quota constraint binds on skewed layouts; even then nearly all tasks\n"
              " match locally and the remainder are filled randomly per IV-B)\n");
}

}  // namespace

int main() {
  ablate_replica_choice();
  ablate_placement();
  full_matching_rate();
  return 0;
}
