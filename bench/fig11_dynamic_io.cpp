// Figure 11 — I/O times for Dynamic Parallel Data Access.
//
// mpiBLAST-style master–worker on a 64-node cluster with 640 chunk files.
// Baseline: the default dynamic assignment (random-order global queue,
// modelling irregular request patterns). Opass: the Section IV-D scheduler —
// per-process guideline lists from the matcher, idle processes steal the
// best co-located task from the longest list. The paper reports the average
// per-op I/O cost at ~2.7x less with Opass.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 11;
  const std::uint32_t tasks = 640;

  workload::GenomicsSpec spec;
  spec.mean_compute_time = 0.0;  // pure-I/O measurement, as in the paper's test

  const auto base = exp::run_dynamic(cfg, tasks, exp::Method::kBaseline, spec);
  const auto op = exp::run_dynamic(cfg, tasks, exp::Method::kOpass, spec);

  std::printf("Figure 11: dynamic-assignment I/O times, 64 nodes, %u chunks "
              "(every 40th op)\n\n",
              tasks);
  Table t({"op#", "default dynamic (s)", "opass (s)"});
  for (std::size_t i = 0; i < base.io_times.size(); i += 40)
    t.add_row({Table::integer(static_cast<long long>(i)), Table::num(base.io_times[i], 2),
               Table::num(op.io_times[i], 2)});
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig11_trace", t);

  std::printf("\ndefault: avg %.2f s (min %.2f, max %.2f), %4.1f%% local\n", base.io.mean,
              base.io.min, base.io.max, 100 * base.local_fraction);
  std::printf("opass:   avg %.2f s (min %.2f, max %.2f), %4.1f%% local\n", op.io.mean,
              op.io.min, op.io.max, 100 * op.local_fraction);
  std::printf("\navg I/O improvement: %.1fx (paper: ~2.7x)\n", base.io.mean / op.io.mean);

  // Heterogeneous variant: heavy-tailed compute times exercise the stealing
  // path (step 3 of Section IV-D) — fast slaves drain their lists and steal.
  workload::GenomicsSpec hetero;
  hetero.mean_compute_time = 0.4;
  const auto hbase = exp::run_dynamic(cfg, tasks, exp::Method::kBaseline, hetero);
  const auto hop = exp::run_dynamic(cfg, tasks, exp::Method::kOpass, hetero);
  std::printf("\nWith heavy-tailed compute (gene-comparison model): makespan %.1f s "
              "(default) vs %.1f s (opass), avg I/O %.2f vs %.2f s\n",
              hbase.makespan, hop.makespan, hbase.io.mean, hop.io.mean);
  return 0;
}
