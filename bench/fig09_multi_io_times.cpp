// Figure 9 — I/O times for Parallel Multi-Data Access.
//
// 64-node cluster; each task has three inputs (30 / 20 / 10 MB) from three
// different datasets. Baseline = rank-interval assignment of tasks; Opass =
// Algorithm 1. The paper reports the Opass average I/O-operation cost at
// about half the default ("2 times less"), smaller than the single-data gain
// because part of each task's data must be read remotely regardless.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 9;
  const std::uint32_t tasks = 640;  // 640 chunk files per dataset triple

  const auto base = exp::run_multi_data(cfg, tasks, exp::Method::kBaseline);
  const auto op = exp::run_multi_data(cfg, tasks, exp::Method::kOpass);

  std::printf("Figure 9: multi-input I/O times, 64 nodes, %u tasks x (30+20+10) MB "
              "(every 120th op)\n\n",
              tasks);
  Table t({"op#", "baseline (s)", "opass (s)"});
  for (std::size_t i = 0; i < base.io_times.size(); i += 120)
    t.add_row({Table::integer(static_cast<long long>(i)), Table::num(base.io_times[i], 2),
               Table::num(op.io_times[i], 2)});
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig09_trace", t);

  std::printf("\nbaseline: avg %.2f s (min %.2f, max %.2f), %4.1f%% of reads local\n",
              base.io.mean, base.io.min, base.io.max, 100 * base.local_fraction);
  std::printf("opass:    avg %.2f s (min %.2f, max %.2f), %4.1f%% of reads local\n",
              op.io.mean, op.io.min, op.io.max, 100 * op.local_fraction);
  std::printf("planned locality (bytes): baseline %4.1f%%, opass %4.1f%%\n",
              100 * base.planned_local_fraction, 100 * op.planned_local_fraction);
  std::printf("\navg I/O improvement: %.1fx (paper: ~2x, less than the single-data case "
              "because multi-input tasks cannot be fully local)\n",
              base.io.mean / op.io.mean);
  return 0;
}
