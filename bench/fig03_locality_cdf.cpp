// Figure 3 + Section III analytic results.
//
// Part 1 (Fig. 3): CDF of the number of chunks read locally, n = 512 chunks
// (32 GB), r = 3, cluster sizes m in {64, 128, 256, 512}, k = 0..20 — plus
// the quoted P(X > 5) tails. The paper's printed numbers follow the
// random-replica variant (p = 1/m); we print both variants and a Monte-Carlo
// validation against the DFS substrate.
//
// Part 2 (Section III-B): the serve-imbalance distribution P(Z <= k) and the
// expected node counts the paper derives from it.
#include <cstdio>

#include "analysis/balance_model.hpp"
#include "analysis/locality_model.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dfs/namenode.hpp"
#include "dfs/replica_choice.hpp"
#include "exp/results_io.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

/// Empirical CDF of locally-served reads under random replica choice
/// (no locality preference), matching the paper's Fig. 3 numbers.
std::vector<double> monte_carlo_cdf(std::uint32_t m, std::uint32_t n, std::uint32_t r,
                                    std::uint64_t k_max, int trials) {
  Rng rng(4242);
  std::vector<std::uint64_t> le(k_max + 1, 0);
  for (int t = 0; t < trials; ++t) {
    dfs::NameNode nn(dfs::Topology::single_rack(m), r, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    workload::make_single_data_workload(nn, n, policy, rng);
    // One reference node; count chunks whose uniformly chosen serving
    // replica lands on it when readers are random other nodes.
    std::uint64_t local = 0;
    for (dfs::ChunkId c = 0; c < nn.chunk_count(); ++c) {
      const auto& reps = nn.locations(c);
      if (reps[rng.uniform(reps.size())] == 0) ++local;
    }
    for (std::uint64_t k = local; k <= k_max; ++k) ++le[k];
  }
  std::vector<double> cdf(k_max + 1);
  for (std::uint64_t k = 0; k <= k_max; ++k)
    cdf[k] = static_cast<double>(le[k]) / trials;
  return cdf;
}

}  // namespace

int main() {
  const std::uint32_t n = 512, r = 3;
  const std::uint32_t sizes[] = {64, 128, 256, 512};

  std::printf("Figure 3: CDF of the number of chunks read locally (n=512, r=3)\n\n");
  Table t({"k", "m=64", "m=128", "m=256", "m=512"});
  std::vector<std::vector<double>> series;
  for (auto m : sizes)
    series.push_back(analysis::LocalityModel{m, r, n}.cdf_series(20));
  for (std::uint64_t k = 0; k <= 20; k += 2) {
    t.add_row({Table::integer(static_cast<long long>(k)), Table::num(series[0][k], 4),
               Table::num(series[1][k], 4), Table::num(series[2][k], 4),
               Table::num(series[3][k], 4)});
  }
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig03_cdf", t);

  std::printf("\nP(X > 5) tails, paper vs model vs Monte-Carlo (500 layouts):\n");
  const double paper_vals[] = {0.8109, 0.2143, 0.0164, 0.0046};
  Table t2({"m", "paper", "model (p=1/m)", "model (p=r/m)", "monte-carlo"});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto m = sizes[i];
    const analysis::LocalityModel random_replica{m, r, n};
    const analysis::LocalityModel co_located{m, r, n, analysis::LocalityMode::kCoLocated};
    const auto mc = monte_carlo_cdf(m, n, r, 5, 500);
    t2.add_row({Table::integer(m), Table::num(paper_vals[i] * 100, 2) + "%",
                Table::num(random_replica.sf_local_reads(5) * 100, 2) + "%",
                Table::num(co_located.sf_local_reads(5) * 100, 2) + "%",
                Table::num((1.0 - mc[5]) * 100, 2) + "%"});
  }
  std::fputs(t2.render().c_str(), stdout);
  std::printf("(the paper's printed tails follow the p=1/m variant; m=512 is the one\n"
              " outlier — see EXPERIMENTS.md)\n");

  std::printf("\nSection III-B: serve-imbalance model, n=512, m=128, r=3\n");
  const analysis::BalanceModel bm{128, r, n};
  Table t3({"k", "P(Z<=k)", "E[#nodes serving <=k]"});
  for (std::uint64_t k : {0ull, 1ull, 2ull, 4ull, 8ull, 12ull}) {
    t3.add_row({Table::integer(static_cast<long long>(k)),
                Table::num(bm.cdf_chunks_served(k), 4),
                Table::num(bm.expected_nodes_serving_at_most(k), 1)});
  }
  std::fputs(t3.render().c_str(), stdout);
  std::printf("\nE[#nodes serving <=1 chunk] = %.1f (paper: 11)\n",
              bm.expected_nodes_serving_at_most(1));
  std::printf("E[#nodes serving  >8 chunks] = %.1f (paper: 6; same order — see "
              "EXPERIMENTS.md)\n",
              bm.expected_nodes_serving_more_than(8));
  std::printf("=> imbalance: a few nodes serve >8x the requests of the ~dozen idle ones\n");
  return 0;
}
