// Message-based scheduling overhead (paper Section V-C2).
//
// "many study shows that scheduling scalability is not a critical issue for
// data-analysis applications" and "the scheduling scalability issue is less
// important compared to the actual data movement".
//
// We run the dynamic workload twice: once with the oracle dispatcher (the
// TaskSource is consulted at zero cost, as runtime::execute models it) and
// once with the full MPI master–worker where every task costs a REQUEST and
// a GRANT message on the simulated network — then report how much the
// explicit scheduling changed the outcome, and how much wire traffic it was.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "mpi/master_worker.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

/// Oracle-mode equivalent of the dedicated master: process 0 (the master's
/// node) never receives work; everyone else pulls from the wrapped source.
class WorkersOnlySource final : public runtime::TaskSource {
 public:
  explicit WorkersOnlySource(runtime::TaskSource& inner) : inner_(inner) {}
  std::optional<runtime::TaskId> next_task(runtime::ProcessId p, Seconds now) override {
    if (p == 0) return std::nullopt;
    return inner_.next_task(p - 1, now);
  }

 private:
  runtime::TaskSource& inner_;
};

}  // namespace

int main() {
  const std::uint32_t nodes = 65;  // node 0 = dedicated master + 64 workers
  const std::uint32_t chunks = 640;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2025);
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);

  core::ProcessPlacement workers;
  for (dfs::NodeId n = 1; n < nodes; ++n) workers.push_back(n);

  std::printf("MPI scheduler overhead: %u workers + dedicated master, %u chunks\n\n",
              nodes - 1, chunks);

  Table t({"dispatcher", "policy", "avg I/O (s)", "local %", "makespan (s)",
           "sched msgs", "sched bytes"});

  for (const bool use_opass : {false, true}) {
    Rng assign_rng(3);
    const auto plan = core::plan({&nn, &tasks, &workers, &assign_rng});

    // Oracle dispatcher (zero-cost master).
    {
      sim::Cluster cluster(nodes);
      Rng e(7), q(9);
      runtime::ExecutorConfig cfg;
      cfg.process_count = nodes;  // process i on node i; rank-0 idles
      runtime::Assignment wide(nodes);
      if (use_opass) {
        for (std::size_t i = 0; i < workers.size(); ++i) wide[workers[i]] = plan.assignment[i];
        runtime::StaticAssignmentSource src(wide);
        const auto r = runtime::execute(cluster, nn, tasks, src, e, cfg);
        t.add_row({"oracle", "opass", Table::num(summarize(r.trace.io_times()).mean, 2),
                   Table::num(100 * r.trace.local_fraction(), 1), Table::num(r.makespan, 1),
                   "0", "0"});
      } else {
        // Oracle master hands out a shuffled queue to workers 1..64 only.
        runtime::MasterWorkerSource inner(chunks, q);
        WorkersOnlySource src(inner);
        const auto r = runtime::execute(cluster, nn, tasks, src, e, cfg);
        t.add_row({"oracle", "default", Table::num(summarize(r.trace.io_times()).mean, 2),
                   Table::num(100 * r.trace.local_fraction(), 1), Table::num(r.makespan, 1),
                   "0", "0"});
      }
    }

    // Message-based master–worker.
    {
      sim::Cluster cluster(nodes);
      mpi::Comm comm(cluster);
      Rng e(7), q(9);
      mpi::MasterWorkerResult r;
      if (use_opass) {
        core::OpassDynamicSource src(plan.assignment, nn, tasks, workers);
        r = mpi::run_master_worker(cluster, nn, tasks, src, comm, e);
      } else {
        runtime::MasterWorkerSource src(chunks, q);
        r = mpi::run_master_worker(cluster, nn, tasks, src, comm, e);
      }
      Bytes data = 0;
      for (const auto& rec : r.exec.trace.records()) data += rec.bytes;
      t.add_row({"mpi messages", use_opass ? "opass" : "default",
                 Table::num(summarize(r.exec.trace.io_times()).mean, 2),
                 Table::num(100 * r.exec.trace.local_fraction(), 1),
                 Table::num(r.exec.makespan, 1),
                 Table::integer(static_cast<long long>(r.scheduler_messages)),
                 format_bytes(r.scheduler_bytes) + " (" +
                     Table::num(100.0 * static_cast<double>(r.scheduler_bytes) /
                                    static_cast<double>(data),
                                4) +
                     "% of data)"});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nExplicit REQUEST/GRANT messaging moves the needle by well under a "
              "percent —\nthe data movement dominates, exactly the paper's Section "
              "V-C2 argument.\n");
  return 0;
}
