// Figure 7 — I/O times for Parallel Single-Data Access.
//
// (a) avg/max/min per-chunk I/O time vs cluster size {16,32,48,64,80}
//     without Opass (rank-interval assignment; ~10 chunks per process);
// (b) the same with Opass (expected: flat ~0.9 s);
// (c) the per-operation I/O-time trace on a 64-node cluster with 640 chunks,
//     where the paper reports the Opass average at ~1/4 of the baseline.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  const std::uint32_t sizes[] = {16, 32, 48, 64, 80};
  const std::uint64_t kSeeds = 5;  // average the sweep over layouts, as the
                                   // paper averages over repeated runs
  std::printf("Figure 7(a,b): per-chunk I/O time vs cluster size (10 chunks/process, "
              "%llu-seed average)\n\n",
              static_cast<unsigned long long>(kSeeds));
  Table t({"nodes", "base avg", "base max", "base min", "opass avg", "opass max",
           "opass min"});
  for (auto m : sizes) {
    double b_avg = 0, b_max = 0, b_min = 0, o_avg = 0, o_max = 0, o_min = 0;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      exp::ExperimentConfig cfg;
      cfg.nodes = m;
      cfg.seed = 7 + s;
      const auto base = exp::run_single_data(cfg, m * 10, exp::Method::kBaseline);
      const auto op = exp::run_single_data(cfg, m * 10, exp::Method::kOpass);
      b_avg += base.io.mean;
      b_max += base.io.max;
      b_min += base.io.min;
      o_avg += op.io.mean;
      o_max += op.io.max;
      o_min += op.io.min;
    }
    const double k = static_cast<double>(kSeeds);
    t.add_row({Table::integer(m), Table::num(b_avg / k, 2), Table::num(b_max / k, 2),
               Table::num(b_min / k, 2), Table::num(o_avg / k, 2),
               Table::num(o_max / k, 2), Table::num(o_min / k, 2)});
  }
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig07_sweep", t);
  std::printf("(paper: baseline max/min grows from 9X at 16 nodes to 21X at 80 nodes;\n"
              " with Opass the I/O time stays ~0.9 s across cluster sizes)\n\n");

  // (c) per-op trace on 64 nodes / 640 chunks.
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 7;
  const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
  const auto op = exp::run_single_data(cfg, 640, exp::Method::kOpass);

  std::printf("Figure 7(c): I/O time per operation, 64 nodes, 640 chunks "
              "(every 40th op, issue order)\n\n");
  Table tc({"op#", "baseline (s)", "opass (s)"});
  for (std::size_t i = 0; i < base.io_times.size(); i += 40)
    tc.add_row({Table::integer(static_cast<long long>(i)), Table::num(base.io_times[i], 2),
                Table::num(op.io_times[i], 2)});
  std::fputs(tc.render().c_str(), stdout);
  exp::maybe_write_csv("fig07_trace", tc);

  std::printf("\nbaseline: avg %.2f s (min %.2f, max %.2f), %4.1f%% local\n", base.io.mean,
              base.io.min, base.io.max, 100 * base.local_fraction);
  std::printf("opass:    avg %.2f s (min %.2f, max %.2f), %4.1f%% local\n", op.io.mean,
              op.io.min, op.io.max, 100 * op.local_fraction);
  std::printf("\navg I/O improvement: %.1fx (paper: ~4x — \"the average I/O operation time "
              "with the use of Opass is a quarter of that without Opass\")\n",
              base.io.mean / op.io.mean);
  return 0;
}
