// perf_executor — reproducible execution-replay micro-benchmark.
//
// Complements perf_planner: plans each fixed-seed scenario once (Dinic
// through the core::plan() facade), then replays the assignment on the
// flow-level cluster simulator `repeats` times, measuring the *wall time* of
// the replay (simulator throughput), the simulated makespan, and the
// observed local-read percentage. Emits BENCH_executor.json:
//
//   perf_executor                      # full matrix -> BENCH_executor.json
//   perf_executor --smoke              # small scenarios, fewer repeats (CI)
//   perf_executor --out=path.json
//
// The JSON is diffed across commits by tools/bench_compare.py.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/analytics.hpp"
#include "obs/collect.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Scenario {
  const char* name;
  std::uint32_t nodes;
  std::uint32_t tasks;
  std::uint32_t replication;
  std::uint64_t seed;
  std::uint32_t repeats;
  bool smoke;                 ///< included in the --smoke matrix
  std::uint32_t threads = 1;  ///< worker-pool lanes (1 = serial path)
};

constexpr Scenario kScenarios[] = {
    {"paper-64n-640t-r3", 64, 640, 3, 42, 7, true},
    {"medium-128n-1280t-r3", 128, 1280, 3, 3, 5, true},
    {"wide-256n-2560t-r3", 256, 2560, 3, 6, 5, false},
    {"large-256n-10240t-r3", 256, 10240, 3, 7, 3, false},
    {"huge-1024n-40960t-r3", 1024, 40960, 3, 9, 3, false},
    // Pooled rows: identical replay (byte-determinism, enforced by ctest) on
    // a 4-lane pool driving the simulator's re-leveling, the staged wave
    // issue and the planner; diff against the serial twin for the pool's
    // wall cost/benefit on the host.
    {"paper-64n-640t-r3-parallel-4t", 64, 640, 3, 42, 7, true, 4},
    {"medium-128n-1280t-r3-parallel-4t", 128, 1280, 3, 3, 5, true, 4},
    {"huge-1024n-40960t-r3-parallel-4t", 1024, 40960, 3, 9, 3, false, 4},
};

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_executor.json";
  bool smoke = false;
  long threads_override = 0;  // 0 = use each scenario's matrix value
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_override = std::atol(argv[i] + 10);
      if (threads_override < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: perf_executor [--out=path.json] [--smoke] [--threads=N]\n");
      return 2;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }

  std::fprintf(f, "{\n  \"bench\": \"executor\",\n  \"schema\": 1,\n  \"scenarios\": [\n");
  bool first = true;
  for (const Scenario& sc : kScenarios) {
    if (smoke && !sc.smoke) continue;

    dfs::NameNode nn(dfs::Topology::single_rack(sc.nodes), sc.replication);
    dfs::RandomPlacement policy;
    Rng layout_rng(sc.seed);
    const auto tasks = workload::make_single_data_workload(nn, sc.tasks, policy, layout_rng);
    const auto placement = core::one_process_per_node(nn);

    const std::uint32_t threads =
        threads_override > 0 ? static_cast<std::uint32_t>(threads_override) : sc.threads;
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(threads);

    Rng assign_rng(sc.seed * 7919 + 1);
    core::PlanOptions plan_options;
    plan_options.pool = pool ? &*pool : nullptr;
    const auto plan = core::plan({&nn, &tasks, &placement, &assign_rng}, plan_options);

    double wall_ms_min = 0, total_ms = 0;
    Seconds makespan = 0;
    double local_pct = 0;
    obs::MetricsRegistry reg;
    obs::ExecutionAnalytics analytics;
    for (std::uint32_t rep = 0; rep < sc.repeats; ++rep) {
      sim::Cluster cluster(sc.nodes, {});
      runtime::StaticAssignmentSource source(plan.assignment);
      runtime::ExecutorConfig ec;
      ec.process_count = static_cast<std::uint32_t>(placement.size());
      if (pool) {
        cluster.simulator().set_parallelism(&*pool);
        ec.pool = &*pool;
      }
      Rng exec_rng(sc.seed * 7919 + 2);  // identical stream every repeat

      const auto t0 = std::chrono::steady_clock::now();
      const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      total_ms += ms;
      if (rep == 0 || ms < wall_ms_min) wall_ms_min = ms;
      makespan = exec.makespan;
      local_pct = 100.0 * exec.trace.local_fraction();
      if (rep == 0) {  // deterministic replay: every repeat collects the same
        obs::collect_execution(reg, exec, sc.nodes, "executor");
        obs::collect_cluster(reg, cluster, "cluster");
        analytics = obs::analyze_execution(exec, sc.nodes);
      }
    }

    // Embedded observability metrics (diffed by tools/bench_compare.py; the
    // CI smoke job gates on degree_of_imbalance): read totals from the
    // collectors, the hottest disk's convoy depth and thrash events across
    // the cluster, and the serve-bytes imbalance analytics from rep 0.
    const std::uint64_t reads_total = reg.at("executor.reads_total").counter;
    const std::uint64_t reads_local = reg.at("executor.reads_local").counter;
    const std::uint64_t bytes_local = reg.at("executor.bytes_local").counter;
    const std::uint64_t read_failures = reg.at("executor.read_failures").counter;
    double disk_peak_load_max = 0;
    std::uint64_t degraded_joins = 0;
    for (std::uint32_t n = 0; n < sc.nodes; ++n) {
      const std::string node = "cluster.node." + std::to_string(n);
      disk_peak_load_max =
          std::max(disk_peak_load_max, reg.at(node + ".disk_peak_load").gauge);
      degraded_joins += reg.at(node + ".disk_degraded_joins").counter;
    }
    // Engine scalability gauges: flow_slots tracks peak concurrency thanks to
    // slot reuse (it must stay near the process count, never the read total).
    const double flow_slots = reg.at("cluster.sim.flow_slots").gauge;
    const std::uint64_t rate_recomputes = reg.at("cluster.sim.rate_recomputes").counter;
    const std::uint64_t relevel_touched =
        reg.at("cluster.sim.rate_recompute_touched_flows").counter;

    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %u, \"tasks\": %u, \"replication\": %u, "
                 "\"seed\": %llu, \"repeats\": %u, \"threads\": %u,\n"
                 "     \"wall_ms_min\": %.4f, \"wall_ms_mean\": %.4f, \"makespan_s\": %.4f, "
                 "\"local_pct\": %.2f, \"peak_rss_kb\": %ld,\n"
                 "     \"metrics\": {\"reads_total\": %llu, \"reads_local\": %llu, "
                 "\"bytes_local_mib\": %.2f, \"read_failures\": %llu, "
                 "\"disk_peak_load_max\": %.0f, \"disk_degraded_joins\": %llu, "
                 "\"flow_slots\": %.0f, \"rate_recomputes\": %llu, "
                 "\"relevel_touched_flows\": %llu,\n"
                 "     \"degree_of_imbalance\": %.4f, \"serve_cv\": %.4f, "
                 "\"serve_gini\": %.4f, \"serve_peak_over_mean\": %.4f, "
                 "\"straggler_nodes\": %zu, \"straggler_processes\": %zu}}",
                 sc.name, sc.nodes, sc.tasks, sc.replication,
                 static_cast<unsigned long long>(sc.seed), sc.repeats, threads, wall_ms_min,
                 total_ms / sc.repeats, makespan, local_pct, peak_rss_kb(),
                 static_cast<unsigned long long>(reads_total),
                 static_cast<unsigned long long>(reads_local), to_mib(bytes_local),
                 static_cast<unsigned long long>(read_failures), disk_peak_load_max,
                 static_cast<unsigned long long>(degraded_joins), flow_slots,
                 static_cast<unsigned long long>(rate_recomputes),
                 static_cast<unsigned long long>(relevel_touched),
                 analytics.serve_bytes.degree_of_imbalance, analytics.serve_bytes.cv,
                 analytics.serve_bytes.gini, analytics.serve_bytes.peak_over_mean,
                 analytics.straggler_nodes.size(), analytics.straggler_processes.size());

    std::printf("%-24s replay %8.3f ms  makespan %8.2f s  local %5.1f%%\n", sc.name,
                wall_ms_min, makespan, local_pct);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
