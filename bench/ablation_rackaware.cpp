// Rack-aware Opass on an oversubscribed multi-rack cluster (extension).
//
// Marmot is a single switch, so the paper stops at node locality. On a
// racked cluster with an oversubscribed core, off-rack reads contend on the
// shared uplinks; a rack-local read avoids them. We compare the baseline,
// plain Opass (node-local only), and the three-phase rack-aware matcher on a
// 64-node / 8-rack cluster whose rack uplinks carry 4x a node NIC (8 nodes
// per rack => 2:1 oversubscription), with r = 1 and tight quotas so node
// locality genuinely saturates and the rack phase has leftovers to place.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

}  // namespace

int main() {
  const std::uint32_t nodes = 64, racks = 8;
  const std::uint32_t chunks = 128;  // 2 per process: tight quotas stress the phases
  const auto topo = dfs::Topology::uniform_racks(nodes, racks);

  dfs::NameNode nn(topo, /*replication=*/1, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(31415);
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  sim::ClusterParams params;  // defaults + oversubscribed core
  params.rack_uplink_bandwidth = 4.0 * params.nic_bandwidth;

  std::printf("Rack-aware Opass: %u nodes in %u racks, uplinks 4x NIC (2:1 "
              "oversubscription), r=1, %u chunks\n\n",
              nodes, racks, chunks);

  struct Variant {
    std::string name;
    runtime::Assignment assignment;
    std::string phases;
  };
  std::vector<Variant> variants;
  variants.push_back({"rank-interval", runtime::rank_interval_assignment(chunks, nodes), "-"});
  {
    Rng arng(7);
    const auto plan = core::plan({&nn, &tasks, &placement, &arng});
    variants.push_back({"opass node-local", plan.assignment,
                        Table::integer(plan.locally_matched) + " node / 0 rack / " +
                            Table::integer(plan.randomly_filled) + " fill"});
  }
  {
    Rng arng(7);
    core::PlanOptions options;
    options.planner = core::PlannerKind::kRackAware;
    const auto plan = core::plan({&nn, &tasks, &placement, &arng}, options);
    variants.push_back({"opass rack-aware", plan.assignment,
                        Table::integer(plan.locally_matched) + " node / " +
                            Table::integer(plan.rack_local) + " rack / " +
                            Table::integer(plan.randomly_filled) + " fill"});
  }

  Table t({"assignment", "phase counts", "avg I/O (s)", "off-rack reads", "makespan (s)"});
  for (const auto& v : variants) {
    sim::Cluster cluster(topo, params);
    runtime::StaticAssignmentSource source(v.assignment);
    Rng exec_rng(11);
    const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
    std::uint32_t off_rack = 0;
    for (const auto& rec : r.trace.records())
      if (cluster.rack_of(rec.reader_node) != cluster.rack_of(rec.serving_node)) ++off_rack;
    t.add_row({v.name, v.phases, Table::num(summarize(r.trace.io_times()).mean, 2),
               Table::integer(off_rack), Table::num(r.makespan, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nThe rack phase converts off-rack reads (which cross the oversubscribed\n"
              "core) into rack-local ones, cutting both the average read and the tail.\n");
  return 0;
}
