// Figure 10 — access-pattern balance for Parallel Multi-Data Access.
//
// Bytes served per node on the 64-node multi-input run. The paper notes the
// balance improves with Opass but less dramatically than for single-data,
// because a task's three inputs are scattered.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 10;
  const std::uint32_t tasks = 640;

  const auto base = exp::run_multi_data(cfg, tasks, exp::Method::kBaseline);
  const auto op = exp::run_multi_data(cfg, tasks, exp::Method::kOpass);

  std::printf("Figure 10: MiB served per node, multi-input workload, 64 nodes "
              "(every 4th node)\n\n");
  Table t({"node", "baseline (MiB)", "opass (MiB)"});
  for (std::uint32_t n = 0; n < cfg.nodes; n += 4)
    t.add_row({Table::integer(n), Table::num(base.served_mb[n], 0),
               Table::num(op.served_mb[n], 0)});
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig10_per_node", t);

  const auto bs = summarize(base.served_mb);
  const auto os = summarize(op.served_mb);
  std::printf("\nbaseline: min %.0f / avg %.0f / max %.0f MiB (Jain %.3f)\n", bs.min, bs.mean,
              bs.max, jain_fairness(base.served_mb));
  std::printf("opass:    min %.0f / avg %.0f / max %.0f MiB (Jain %.3f)\n", os.min, os.mean,
              os.max, jain_fairness(op.served_mb));
  std::printf("\n(paper: balance improves with Opass, but less than in the single-data\n"
              " test — the three inputs of a task are not always co-located)\n");
  return 0;
}
