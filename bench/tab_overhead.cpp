// Section V-C — efficiency and overhead of the matching method.
//
// The paper: "the overhead created by the matching method was less than 1%
// of the overhead involved with accessing the whole dataset" and "reading a
// single chunk file remotely could take more than 2 seconds, the worst case
// being 12 seconds".
//
// google-benchmark microbenchmarks of the matchers across problem sizes,
// followed by the explicit overhead-vs-data-access comparison.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <chrono>

#include "exp/experiment.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"
#include "workload/multi_input.hpp"

namespace {

using namespace opass;

struct Env {
  Env(std::uint32_t nodes, std::uint32_t chunks, bool multi) :
      nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize), rng(99) {
    dfs::RandomPlacement policy;
    tasks = multi ? workload::make_multi_input_workload(nn, chunks, policy, rng)
                  : workload::make_single_data_workload(nn, chunks, policy, rng);
    placement = core::one_process_per_node(nn);
  }
  dfs::NameNode nn;
  Rng rng;
  std::vector<runtime::Task> tasks;
  core::ProcessPlacement placement;
};

void BM_BuildLocalityGraph(benchmark::State& state) {
  Env env(static_cast<std::uint32_t>(state.range(0)),
          static_cast<std::uint32_t>(state.range(0)) * 10, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_process_chunk_graph(env.nn, env.placement));
  }
}
BENCHMARK(BM_BuildLocalityGraph)->Arg(16)->Arg(64)->Arg(128);

void BM_SingleDataEdmondsKarp(benchmark::State& state) {
  Env env(static_cast<std::uint32_t>(state.range(0)),
          static_cast<std::uint32_t>(state.range(0)) * 10, false);
  for (auto _ : state) {
    Rng rng(1);
    // opass-lint: allow(facade-only) — microbenchmark of the raw matcher
    benchmark::DoNotOptimize(core::assign_single_data(
        env.nn, env.tasks, env.placement, rng, {graph::MaxFlowAlgorithm::kEdmondsKarp}));
  }
}
BENCHMARK(BM_SingleDataEdmondsKarp)->Arg(16)->Arg(64)->Arg(128);

void BM_SingleDataDinic(benchmark::State& state) {
  Env env(static_cast<std::uint32_t>(state.range(0)),
          static_cast<std::uint32_t>(state.range(0)) * 10, false);
  for (auto _ : state) {
    Rng rng(1);
    // opass-lint: allow(facade-only) — microbenchmark of the raw matcher
    benchmark::DoNotOptimize(core::assign_single_data(
        env.nn, env.tasks, env.placement, rng, {graph::MaxFlowAlgorithm::kDinic}));
  }
}
BENCHMARK(BM_SingleDataDinic)->Arg(16)->Arg(64)->Arg(128);

void BM_MultiDataAlgorithm1(benchmark::State& state) {
  Env env(static_cast<std::uint32_t>(state.range(0)),
          static_cast<std::uint32_t>(state.range(0)) * 10, true);
  for (auto _ : state) {
    // opass-lint: allow(facade-only) — microbenchmark of the raw matcher
    benchmark::DoNotOptimize(core::assign_multi_data(env.nn, env.tasks, env.placement));
  }
}
BENCHMARK(BM_MultiDataAlgorithm1)->Arg(16)->Arg(64)->Arg(128);

/// The paper's <1% claim: wall-clock matcher cost vs simulated time to read
/// the dataset (which is what the application actually waits for).
void print_overhead_table() {
  std::printf("\nOverhead of matching vs. data access (64 nodes, 640 chunks):\n");
  Env env(64, 640, false);

  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(1);
  // opass-lint: allow(facade-only) — timing the matcher alone is the point
  auto plan = core::assign_single_data(env.nn, env.tasks, env.placement, rng);
  const auto t1 = std::chrono::steady_clock::now();
  const double match_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 99;
  const auto out = exp::run_single_data(cfg, 640, exp::Method::kOpass);
  const double access_ms = out.makespan * 1000.0;

  std::printf("  matching time:          %8.2f ms (wall clock)\n", match_ms);
  std::printf("  dataset access time:    %8.2f ms (simulated parallel read)\n", access_ms);
  std::printf("  overhead:               %8.3f %%  (paper: < 1%%)\n",
              100.0 * match_ms / access_ms);

  const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
  std::printf("\nRemote-read magnitudes (baseline run): avg %.2f s, worst %.2f s\n",
              base.io.mean, base.io.max);
  std::printf("(paper: remote chunk reads >2 s, worst case 12 s; local ~1 s)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_overhead_table();
  return 0;
}
