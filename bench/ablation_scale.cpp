// Scale knobs: chunk size and processes per node.
//
// The paper fixes 64 MB chunks and one process per node (on 2-core Marmot
// nodes). This ablation sweeps both: smaller chunks mean more, shorter
// reads (same bytes); more processes per node oversubscribe each disk even
// under full locality.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace opass;

  std::printf("Chunk-size sweep: 64 nodes, 40 GiB dataset, baseline vs Opass\n\n");
  Table t1({"chunk size", "chunks", "base avg I/O", "base makespan", "opass avg I/O",
            "opass makespan"});
  for (const Bytes chunk_mb : {32ull, 64ull, 128ull}) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 99;
    cfg.chunk_size = chunk_mb * kMiB;
    const auto chunks = static_cast<std::uint32_t>(40 * kGiB / cfg.chunk_size);
    const auto base = exp::run_single_data(cfg, chunks, exp::Method::kBaseline);
    const auto op = exp::run_single_data(cfg, chunks, exp::Method::kOpass);
    t1.add_row({format_bytes(cfg.chunk_size), Table::integer(chunks),
                Table::num(base.io.mean, 2), Table::num(base.makespan, 1),
                Table::num(op.io.mean, 2), Table::num(op.makespan, 1)});
  }
  std::fputs(t1.render().c_str(), stdout);
  std::printf("(per-op time scales with the chunk size; the locality gap — and the\n"
              " makespan ratio — is chunk-size invariant)\n\n");

  std::printf("Processes-per-node sweep: 64 nodes, 640 chunks\n\n");
  Table t2({"procs/node", "base avg I/O", "base makespan", "opass avg I/O",
            "opass makespan", "opass local %"});
  for (const std::uint32_t ppn : {1u, 2u, 4u}) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 99;
    cfg.processes_per_node = ppn;
    const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
    const auto op = exp::run_single_data(cfg, 640, exp::Method::kOpass);
    t2.add_row({Table::integer(ppn), Table::num(base.io.mean, 2),
                Table::num(base.makespan, 1), Table::num(op.io.mean, 2),
                Table::num(op.makespan, 1), Table::num(100 * op.local_fraction, 1)});
  }
  std::fputs(t2.render().c_str(), stdout);
  std::printf("(Opass keeps locality at every density; with more processes per node the\n"
              " local disk itself becomes the shared bottleneck, so per-op times rise\n"
              " for both methods while the ordering is preserved)\n");
  return 0;
}
