// Iterative data analysis (the paper's Introduction motivation).
//
// "large amounts of data movement over the shared network could incur an
// extra overhead during parallel execution, especially during iterative data
// analysis, which involves moving data from storage to processes
// repeatedly." Every epoch of a locality-blind job pays the remote,
// imbalanced pattern again; Opass computes the matching once (milliseconds)
// and every subsequent epoch reads locally.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 271828;
  const std::uint32_t chunks = 640;

  std::printf("Iterative analysis: 64 nodes, %u chunks per epoch, 0.5 s compute/task\n\n",
              chunks);

  Table t({"epochs", "baseline total (s)", "opass total (s)", "speedup",
           "baseline s/epoch", "opass s/epoch"});
  for (std::uint32_t epochs : {1u, 2u, 4u, 8u}) {
    const auto base =
        exp::run_iterative(cfg, chunks, epochs, exp::Method::kBaseline, 0.5);
    const auto op = exp::run_iterative(cfg, chunks, epochs, exp::Method::kOpass, 0.5);
    t.add_row({Table::integer(epochs), Table::num(base.total_time, 1),
               Table::num(op.total_time, 1),
               Table::num(base.total_time / op.total_time, 2) + "x",
               Table::num(base.total_time / epochs, 1),
               Table::num(op.total_time / epochs, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  const auto base = exp::run_iterative(cfg, chunks, 4, exp::Method::kBaseline, 0.5);
  const auto op = exp::run_iterative(cfg, chunks, 4, exp::Method::kOpass, 0.5);
  std::printf("\nper-epoch times (4-epoch run): baseline");
  for (Seconds s : base.epoch_times) std::printf(" %.1f", s);
  std::printf(" s; opass");
  for (Seconds s : op.epoch_times) std::printf(" %.1f", s);
  std::printf(" s\n");
  std::printf("\nThe per-epoch gap is constant, so Opass's advantage scales linearly with\n"
              "iteration count while its one-time matching cost stays in the noise.\n");
  return 0;
}
