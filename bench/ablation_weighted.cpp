// Byte-weighted vs count-equal assignment on heterogeneous file sizes.
//
// The paper's Fig. 5 network carries *byte* capacities (TotalSize/m per
// process), but its experiments use uniform 64 MB chunks where count-equal
// and byte-equal coincide. This ablation separates them: a VTK-like series
// with mixed file sizes (8–64 MiB), comparing the rank-interval baseline,
// the unit (count-equal) Opass matcher, and the byte-weighted matcher.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"

namespace {

using namespace opass;

}  // namespace

int main() {
  const std::uint32_t nodes = 64;
  const std::uint32_t files = 640;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(77);

  std::vector<runtime::Task> tasks;
  Bytes total = 0;
  for (std::uint32_t i = 0; i < files; ++i) {
    const Bytes size = (8 + rng.uniform(57)) * kMiB;  // 8..64 MiB
    const auto fid = nn.create_file("series/f" + std::to_string(i), size, policy, rng);
    runtime::Task t;
    t.id = i;
    t.inputs = {nn.file(fid).chunks[0]};
    tasks.push_back(std::move(t));
    total += size;
  }
  const auto placement = core::one_process_per_node(nn);

  std::printf("Heterogeneous series: %u files, %.1f GiB total, sizes 8-64 MiB, %u nodes\n\n",
              files, to_gib(total), nodes);

  struct Variant {
    const char* name;
    runtime::Assignment assignment;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"rank-interval", runtime::rank_interval_assignment(files, nodes)});
  {
    Rng arng(5);
    variants.push_back(
        {"opass count-equal", core::plan({&nn, &tasks, &placement, &arng}).assignment});
  }
  {
    Rng arng(5);
    core::PlanOptions options;
    options.planner = core::PlannerKind::kWeighted;
    variants.push_back({"opass byte-equal",
                        core::plan({&nn, &tasks, &placement, &arng}, options).assignment});
  }

  Table t({"assignment", "local %", "byte spread (MiB)", "avg I/O (s)", "makespan (s)"});
  for (auto& v : variants) {
    const auto stats = core::evaluate_assignment(nn, tasks, v.assignment, placement);
    Bytes hi = 0, lo = UINT64_MAX;
    for (const auto& list : v.assignment) {
      Bytes b = 0;
      for (auto task : list) b += nn.chunk(tasks[task].inputs[0]).size;
      hi = std::max(hi, b);
      lo = std::min(lo, b);
    }
    sim::Cluster cluster(nodes);
    runtime::StaticAssignmentSource source(v.assignment);
    Rng exec_rng(13);
    const auto result = runtime::execute(cluster, nn, tasks, source, exec_rng);
    t.add_row({v.name, Table::num(100 * stats.local_fraction(), 1),
               Table::num(to_mib(hi - lo), 0),
               Table::num(summarize(result.trace.io_times()).mean, 2),
               Table::num(result.makespan, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nBoth Opass variants reach ~full locality; byte-equal additionally evens\n"
              "the per-process byte load, which shortens the barrier (makespan) when\n"
              "file sizes vary — the regime where Fig. 5's byte capacities matter.\n");
  return 0;
}
