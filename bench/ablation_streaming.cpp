// Streaming arrivals: incremental matching vs oblivious dispatch.
//
// Tasks arrive in batches (a visualization session opening new time steps);
// each batch must be dispatched when it arrives. The incremental planner
// matches every batch against the remaining fair share, keeping cumulative
// load within one task across processes while preserving locality; the
// baseline deals each batch round-robin.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

}  // namespace

int main() {
  const std::uint32_t nodes = 64;
  const std::uint32_t batches = 8, per_batch = 80;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(2718);
  const auto tasks =
      workload::make_single_data_workload(nn, batches * per_batch, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  std::printf("Streaming arrivals: %u batches x %u tasks on %u nodes, batch gap 2 s\n\n",
              batches, per_batch, nodes);

  Table t({"dispatcher", "local %", "avg I/O (s)", "total time (s)"});
  for (const bool use_opass : {false, true}) {
    core::IncrementalPlanner planner(nn, placement);
    sim::Cluster cluster(nodes);
    sim::TraceRecorder all;
    Rng exec_rng(5), fill_rng(7);
    Seconds total = 0;

    for (std::uint32_t b = 0; b < batches; ++b) {
      const std::vector<runtime::Task> batch(tasks.begin() + b * per_batch,
                                             tasks.begin() + (b + 1) * per_batch);
      runtime::Assignment assignment(nodes);
      if (use_opass) {
        const auto plan = planner.match_batch(batch, fill_rng, {});
        assignment = plan.assignment;
      } else {
        for (std::uint32_t i = 0; i < per_batch; ++i)
          assignment[i % nodes].push_back(batch[i].id);
      }
      const Seconds start = cluster.simulator().now();
      runtime::StaticAssignmentSource source(assignment);
      const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
      total = r.makespan;
      for (const auto& rec : r.trace.records()) all.add(rec);
      // Inter-batch gap (the next time step opens 2 s later).
      cluster.simulator().after(2.0, [](Seconds) {});
      cluster.run();
      (void)start;
    }
    t.add_row({use_opass ? "incremental opass" : "round-robin",
               Table::num(100 * all.local_fraction(), 1),
               Table::num(summarize(all.io_times()).mean, 2), Table::num(total, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nBatch-at-a-time matching keeps ~full locality without knowing future\n"
              "arrivals, and its least-loaded quota rule keeps cumulative per-process\n"
              "load within one task across batches.\n");
  return 0;
}
