// Figure 12 + Section V-B — ParaView with Opass.
//
// ParaView 3.14 reading a MultiBlock series of 640 Protein-Data-Bank-derived
// datasets (~26 GB, 64 datasets of ~56 MB per rendering step) on a 64-node
// cluster, Opass hooked into vtkXMLCompositeDataReader::ReadXMLData().
// The paper reports per-call read times of 5.48 s avg (stddev 1.339) without
// Opass vs 3.07 s (stddev 0.316) with it, and total execution 167 s vs 98 s.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 12;

  workload::ParaViewSpec spec;  // paper defaults: 640 datasets, 64/step, 56 MB

  const auto base = exp::run_paraview(cfg, exp::Method::kBaseline, spec);
  const auto op = exp::run_paraview(cfg, exp::Method::kOpass, spec);

  std::printf("Figure 12: vtkFileSeriesReader request-time trace, 64 nodes "
              "(every 40th call)\n\n");
  Table t({"call#", "paraview (s)", "paraview+opass (s)"});
  for (std::size_t i = 0; i < base.run.io_times.size(); i += 40)
    t.add_row({Table::integer(static_cast<long long>(i)),
               Table::num(base.run.io_times[i], 2), Table::num(op.run.io_times[i], 2)});
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig12_trace", t);

  std::printf("\nper-call read time: without opass avg %.2f s (stddev %.3f); "
              "with opass avg %.2f s (stddev %.3f)\n",
              base.run.io.mean, base.run.io.stddev, op.run.io.mean, op.run.io.stddev);
  std::printf("(paper: 5.48 s stddev 1.339 vs 3.07 s stddev 0.316)\n");

  std::printf("\nper-step times (s):\n");
  Table ts({"step", "paraview", "paraview+opass"});
  for (std::size_t s = 0; s < base.step_times.size(); ++s)
    ts.add_row({Table::integer(static_cast<long long>(s)),
                Table::num(base.step_times[s], 1), Table::num(op.step_times[s], 1)});
  std::fputs(ts.render().c_str(), stdout);

  std::printf("\ntotal execution: %.0f s without opass vs %.0f s with opass "
              "(paper: ~167 s vs ~98 s)\n",
              base.total_time, op.total_time);
  std::printf("speedup: %.2fx (paper: 1.70x)\n", base.total_time / op.total_time);
  return 0;
}
