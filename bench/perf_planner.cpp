// perf_planner — reproducible planner micro-benchmark.
//
// Runs the single-data matcher over a fixed-seed scenario matrix
// (nodes x tasks x replication), once per max-flow solver, and emits a
// machine-readable JSON report (BENCH_planner.json by default):
//
//   perf_planner                      # full matrix -> BENCH_planner.json
//   perf_planner --smoke              # small scenarios, fewer repeats (CI)
//   perf_planner --out=path.json
//
// Per scenario and solver it records min/mean wall time over `repeats`
// identical runs (same assign seed, shared FlowWorkspace, so steady-state
// repeats measure solve time, not allocation), the matched-task count and
// locality percentage, and a plan_audit verdict. `parity_ok` asserts both
// solvers matched the same (maximum) number of tasks. Wall times compare
// across solvers on the same host; the JSON is diffed by
// tools/bench_compare.py, which is what the CI smoke job gates on.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Scenario {
  const char* name;
  std::uint32_t nodes;
  std::uint32_t tasks;
  std::uint32_t replication;
  std::uint64_t seed;
  std::uint32_t repeats;
  bool smoke;                 ///< included in the --smoke matrix
  std::uint32_t threads = 1;  ///< worker-pool lanes (1 = serial path)
};

constexpr Scenario kScenarios[] = {
    {"tiny-16n-160t-r3", 16, 160, 3, 1, 9, true},
    {"paper-64n-640t-r3", 64, 640, 3, 42, 9, true},
    {"medium-128n-1280t-r3", 128, 1280, 3, 3, 7, true},
    {"replication-1-64n-640t", 64, 640, 1, 4, 9, false},
    {"replication-5-64n-640t", 64, 640, 5, 5, 9, false},
    {"wide-256n-2560t-r3", 256, 2560, 3, 6, 5, false},
    {"large-256n-10240t-r3", 256, 10240, 3, 7, 5, false},
    // Pooled rows: same layouts and seeds as their serial twins, solved with
    // PlanOptions::threads = 4 — the plan is byte-identical (the determinism
    // suite enforces it), so diffing the twin rows isolates the pool's wall
    // cost/benefit on the host.
    {"paper-64n-640t-r3-parallel-4t", 64, 640, 3, 42, 9, true, 4},
    {"medium-128n-1280t-r3-parallel-4t", 128, 1280, 3, 3, 7, true, 4},
    {"large-256n-10240t-r3-parallel-4t", 256, 10240, 3, 7, 5, false, 4},
};

constexpr graph::MaxFlowAlgorithm kAlgorithms[] = {
    graph::MaxFlowAlgorithm::kDinic,
    graph::MaxFlowAlgorithm::kEdmondsKarp,
};

struct SolverResult {
  double wall_ms_min = 0;
  double wall_ms_mean = 0;
  std::uint32_t locally_matched = 0;
  double locality_pct = 0;
  bool audit_ok = false;
  // Embedded facade metrics (from the last repeat's PlanResult); diffed
  // informationally by tools/bench_compare.py.
  std::uint32_t randomly_filled = 0;
  double plan_wall_ms = 0;   ///< facade's own matcher-dispatch timing
  double stats_wall_ms = 0;  ///< facade's evaluate_assignment timing
};

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

SolverResult run_solver(const Scenario& sc, const dfs::NameNode& nn,
                        const std::vector<runtime::Task>& tasks,
                        const core::ProcessPlacement& placement,
                        graph::MaxFlowAlgorithm algorithm, ThreadPool* pool) {
  SolverResult out;
  graph::FlowWorkspace workspace;
  core::PlanOptions options;
  options.algorithm = algorithm;
  options.workspace = &workspace;
  options.pool = pool;

  double total_ms = 0;
  core::PlanResult last;
  for (std::uint32_t rep = 0; rep < sc.repeats; ++rep) {
    Rng assign_rng(sc.seed * 7919 + 1);  // identical stream every repeat
    const auto t0 = std::chrono::steady_clock::now();
    last = core::plan({&nn, &tasks, &placement, &assign_rng}, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    total_ms += ms;
    if (rep == 0 || ms < out.wall_ms_min) out.wall_ms_min = ms;
  }
  out.wall_ms_mean = total_ms / sc.repeats;
  out.locally_matched = last.locally_matched;
  out.locality_pct = sc.tasks ? 100.0 * last.locally_matched / sc.tasks : 0.0;
  out.randomly_filled = last.randomly_filled;
  out.plan_wall_ms = last.plan_wall_ms;
  out.stats_wall_ms = last.stats_wall_ms;

  core::AuditOptions audit_options;
  audit_options.enforce_capacity = true;
  const auto report = core::audit_plan(nn, tasks, last.assignment, placement, audit_options);
  out.audit_ok = report.ok();
  if (!out.audit_ok)
    std::fprintf(stderr, "audit FAILED for %s/%s:\n%s", sc.name,
                 graph::max_flow_algorithm_name(algorithm), report.to_string().c_str());
  return out;
}

void emit_solver(std::FILE* f, const char* name, const SolverResult& r, bool last) {
  std::fprintf(f,
               "      \"%s\": {\"wall_ms_min\": %.4f, \"wall_ms_mean\": %.4f, "
               "\"locally_matched\": %u, \"locality_pct\": %.2f, \"audit_ok\": %s,\n"
               "        \"metrics\": {\"randomly_filled\": %u, \"plan_wall_ms\": %.4f, "
               "\"stats_wall_ms\": %.4f}}%s\n",
               name, r.wall_ms_min, r.wall_ms_mean, r.locally_matched, r.locality_pct,
               r.audit_ok ? "true" : "false", r.randomly_filled, r.plan_wall_ms,
               r.stats_wall_ms, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_planner.json";
  bool smoke = false;
  long threads_override = 0;  // 0 = use each scenario's matrix value
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_override = std::atol(argv[i] + 10);
      if (threads_override < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: perf_planner [--out=path.json] [--smoke] [--threads=N]\n");
      return 2;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }

  std::fprintf(f, "{\n  \"bench\": \"planner\",\n  \"schema\": 1,\n  \"scenarios\": [\n");
  bool first = true;
  int rc = 0;
  for (const Scenario& sc : kScenarios) {
    if (smoke && !sc.smoke) continue;

    // Seeded layout: identical namespace + workload for both solvers.
    dfs::NameNode nn(dfs::Topology::single_rack(sc.nodes), sc.replication);
    dfs::RandomPlacement policy;
    Rng layout_rng(sc.seed);
    const auto tasks = workload::make_single_data_workload(nn, sc.tasks, policy, layout_rng);
    const auto placement = core::one_process_per_node(nn);

    const std::uint32_t threads =
        threads_override > 0 ? static_cast<std::uint32_t>(threads_override) : sc.threads;
    std::optional<ThreadPool> pool;
    if (threads > 1) pool.emplace(threads);

    SolverResult results[2];
    for (std::size_t a = 0; a < 2; ++a)
      results[a] =
          run_solver(sc, nn, tasks, placement, kAlgorithms[a], pool ? &*pool : nullptr);
    const bool parity = results[0].locally_matched == results[1].locally_matched;
    if (!parity || !results[0].audit_ok || !results[1].audit_ok) rc = 1;

    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %u, \"tasks\": %u, \"replication\": %u, "
                 "\"seed\": %llu, \"repeats\": %u, \"threads\": %u,\n     \"algorithms\": {\n",
                 sc.name, sc.nodes, sc.tasks, sc.replication,
                 static_cast<unsigned long long>(sc.seed), sc.repeats, threads);
    for (std::size_t a = 0; a < 2; ++a)
      emit_solver(f, graph::max_flow_algorithm_name(kAlgorithms[a]), results[a], a == 1);
    std::fprintf(f, "     },\n     \"peak_rss_kb\": %ld, \"parity_ok\": %s}", peak_rss_kb(),
                 parity ? "true" : "false");

    std::printf("%-24s dinic %8.3f ms  edmonds-karp %8.3f ms  speedup %5.2fx  "
                "matched %u/%u  parity=%s\n",
                sc.name, results[0].wall_ms_min, results[1].wall_ms_min,
                results[0].wall_ms_min > 0 ? results[1].wall_ms_min / results[0].wall_ms_min
                                           : 0.0,
                results[0].locally_matched, sc.tasks, parity ? "ok" : "MISMATCH");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return rc;
}
