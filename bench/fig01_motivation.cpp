// Figure 1 — motivation experiment.
//
// "we launch an MPI-based application running with parallel processes on a
// 64-node cluster to read a data set, which contains 128 chunks, each around
// 64 MB. Ideally, each node should serve 2 chunks. However ... some nodes,
// for instance node-43, serve more than 6 chunks while some node serve
// none."
//
// Prints (a) chunks served per node and (b) the I/O-time histogram, plus the
// same run with Opass for contrast.
#include <cstdio>

#include "common/histogram.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 20150529;  // IPDPS'15 conference date as a fixed seed

  const std::uint32_t chunks = 128;
  std::printf("Figure 1: imbalanced parallel reads — 64 nodes, %u chunks of 64 MiB\n\n",
              chunks);

  const auto base = exp::run_single_data(cfg, chunks, exp::Method::kBaseline);
  const auto opass = exp::run_single_data(cfg, chunks, exp::Method::kOpass);

  // (a) chunks served per node — the paper's bar chart as a table of the
  // interesting rows plus a summary.
  std::printf("Fig 1(a): size of data served on each node (ideal: 2 chunks = 128 MiB)\n");
  Table ta({"node", "baseline (MiB)", "baseline (chunks)", "opass (MiB)"});
  std::uint32_t max_node = 0;
  for (std::uint32_t n = 0; n < cfg.nodes; ++n)
    if (base.served_mb[n] > base.served_mb[max_node]) max_node = n;
  std::uint32_t idle = 0;
  for (std::uint32_t n = 0; n < cfg.nodes; ++n)
    if (base.served_mb[n] == 0) ++idle;
  for (std::uint32_t n = 0; n < cfg.nodes; n += 8) {
    ta.add_row({Table::integer(n), Table::num(base.served_mb[n], 0),
                Table::num(base.served_mb[n] / 64.0, 1), Table::num(opass.served_mb[n], 0)});
  }
  ta.add_row({"max=" + std::to_string(max_node), Table::num(base.served_mb[max_node], 0),
              Table::num(base.served_mb[max_node] / 64.0, 1),
              Table::num(opass.served_mb[max_node], 0)});
  std::fputs(ta.render().c_str(), stdout);
  std::printf("\nbaseline: hottest node serves %.1f chunks; %u nodes serve none "
              "(paper: >6 chunks / some serve none)\n\n",
              base.served_mb[max_node] / 64.0, idle);

  // (b) I/O execution time histogram.
  std::printf("Fig 1(b): histogram of per-chunk I/O times (s), baseline\n");
  Histogram hb(0.0, 10.0, 10);
  hb.add_all(base.io_times);
  std::fputs(hb.render().c_str(), stdout);
  std::printf("\nsame with Opass\n");
  Histogram ho(0.0, 10.0, 10);
  ho.add_all(opass.io_times);
  std::fputs(ho.render().c_str(), stdout);

  std::printf("\nbaseline I/O times: min %.2f / avg %.2f / max %.2f s (paper: large spread)\n",
              base.io.min, base.io.mean, base.io.max);
  std::printf("opass    I/O times: min %.2f / avg %.2f / max %.2f s\n", opass.io.min,
              opass.io.mean, opass.io.max);
  return 0;
}
