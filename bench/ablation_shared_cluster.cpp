// Shared-cluster experiment (paper Section V-C1).
//
// "Unlike a supercomputer platform, clusters are usually shared by multiple
// applications. Thus, Opass may not greatly enhance the performance of
// parallel data requests due to the adjustment of HDFS. However, Opass
// allows the parallel data requests to be served in an optimized way as long
// as the cluster nodes have the capability to deliver data in the fashion of
// locality and balance."
//
// Two applications run concurrently on one 64-node cluster, each reading its
// own 320-chunk dataset. We compare all four scheduler combinations.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct App {
  std::vector<runtime::Task> tasks;
  runtime::Assignment assignment;
};

}  // namespace

int main() {
  const std::uint32_t nodes = 64;
  const std::uint32_t chunks = 320;

  std::printf("Shared cluster (Section V-C1): two concurrent applications, %u nodes, "
              "%u chunks each\n\n",
              nodes, chunks);

  Table t({"app A", "app B", "A avg I/O (s)", "B avg I/O (s)", "A makespan", "B makespan",
           "cluster Jain"});

  for (int combo = 0; combo < 4; ++combo) {
    const bool a_opass = combo & 1;
    const bool b_opass = combo & 2;

    // Fresh identical environment per combo (seeded placement).
    dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
    dfs::RandomPlacement policy;
    Rng placement_rng(2020);
    App a, b;
    a.tasks = workload::make_single_data_workload(nn, chunks, policy, placement_rng);
    {
      const auto fid = nn.create_file("datasetB",
                                      static_cast<Bytes>(chunks) * nn.chunk_size(), policy,
                                      placement_rng);
      b.tasks = runtime::single_input_tasks(nn, {fid});
    }
    const auto placement = core::one_process_per_node(nn);
    Rng assign_rng(7);
    a.assignment = a_opass
                       ? core::plan({&nn, &a.tasks, &placement, &assign_rng}).assignment
                       : runtime::rank_interval_assignment(chunks, nodes);
    b.assignment = b_opass
                       ? core::plan({&nn, &b.tasks, &placement, &assign_rng}).assignment
                       : runtime::rank_interval_assignment(chunks, nodes);

    sim::Cluster cluster(nodes);
    runtime::StaticAssignmentSource sa(a.assignment), sb(b.assignment);
    std::vector<runtime::JobSpec> jobs(2);
    jobs[0].tasks = &a.tasks;
    jobs[0].source = &sa;
    jobs[1].tasks = &b.tasks;
    jobs[1].source = &sb;
    Rng exec_rng(13);
    const auto results = runtime::execute_jobs(cluster, nn, jobs, exec_rng);

    std::vector<double> served;
    for (Bytes v : cluster.served_bytes()) served.push_back(to_mib(v));
    t.add_row({a_opass ? "opass" : "baseline", b_opass ? "opass" : "baseline",
               Table::num(summarize(results[0].trace.io_times()).mean, 2),
               Table::num(summarize(results[1].trace.io_times()).mean, 2),
               Table::num(results[0].makespan, 1), Table::num(results[1].makespan, 1),
               Table::num(jain_fairness(served), 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nTakeaways: (1) a baseline neighbour's remote traffic slows an Opass app\n"
              "below its solo ~0.9 s/read floor — the paper's \"may not greatly enhance\"\n"
              "caveat; (2) both apps on Opass restores near-floor I/O and perfect balance,\n"
              "because local reads never cross NICs at all.\n");
  return 0;
}
