// Cluster-membership churn experiment.
//
// The paper (Section IV-B): "in HDFS, there are cases that can cause the
// data distribution to be unbalanced. For instance, node addition or removal
// could cause an unbalanced redistribution of data. Because of this, the
// maximum matching achieved through the flow-based method may be not a full
// matching."
//
// We store a dataset on 72 nodes, decommission 8 (their replicas re-created
// on random survivors, skewing the layout), and compare baseline vs Opass on
// the surviving 64 nodes, before and after running the HDFS-style balancer.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Row {
  const char* phase;
  double spread;  // max-min replica count
  std::uint32_t locally_matched;
  std::uint32_t filled;
  double base_avg_io, opass_avg_io;
};

Row measure(const char* phase, dfs::NameNode& nn, const std::vector<runtime::Task>& tasks) {
  // Processes live on the surviving nodes only.
  core::ProcessPlacement placement;
  for (dfs::NodeId n = 0; n < nn.node_count(); ++n)
    if (!nn.is_decommissioned(n)) placement.push_back(n);

  const auto counts = nn.node_chunk_counts();
  std::uint32_t hi = 0, lo = UINT32_MAX;
  for (dfs::NodeId n = 0; n < nn.node_count(); ++n) {
    if (nn.is_decommissioned(n)) continue;
    hi = std::max(hi, counts[n]);
    lo = std::min(lo, counts[n]);
  }

  Rng assign_rng(31);
  const auto plan = core::plan({&nn, &tasks, &placement, &assign_rng});

  // execute() pins process p to node p, so we run with one process per node
  // (decommissioned ones get empty task lists via widen() below and retire
  // immediately). Decommissioned nodes hold no replicas, so no read ever
  // touches them.
  auto run = [&](const runtime::Assignment& assignment) {
    sim::Cluster cluster(nn.node_count());
    runtime::StaticAssignmentSource source(assignment);
    Rng exec_rng(17);
    runtime::ExecutorConfig full;
    full.process_count = nn.node_count();
    return runtime::execute(cluster, nn, tasks, source, exec_rng, full);
  };

  // Build full-width assignments: index = node id; decommissioned nodes idle.
  auto widen = [&](const runtime::Assignment& compact) {
    runtime::Assignment wide(nn.node_count());
    for (std::size_t i = 0; i < placement.size(); ++i) wide[placement[i]] = compact[i];
    return wide;
  };

  const auto base_compact = runtime::rank_interval_assignment(
      static_cast<std::uint32_t>(tasks.size()), static_cast<std::uint32_t>(placement.size()));
  const auto base = run(widen(base_compact));
  const auto opass = run(widen(plan.assignment));

  return {phase,
          static_cast<double>(hi - lo),
          plan.locally_matched,
          plan.randomly_filled,
          summarize(base.trace.io_times()).mean,
          summarize(opass.trace.io_times()).mean};
}

}  // namespace

namespace {

void run_scenario(std::uint32_t chunks) {
  const std::uint32_t initial_nodes = 72;
  const std::uint32_t decommissioned = 8;

  dfs::NameNode nn(dfs::Topology::single_rack(initial_nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(99);
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);

  std::printf("Membership churn: %u nodes, decommission %u, %u chunks (~%u per "
              "surviving process)\n\n",
              initial_nodes, decommissioned, chunks,
              chunks / (initial_nodes - decommissioned));

  std::vector<Row> rows;
  rows.push_back(measure("initial (72 up)", nn, tasks));

  for (std::uint32_t i = 0; i < decommissioned; ++i) nn.decommission_node(i, rng);
  nn.check_invariants();
  rows.push_back(measure("after decommission", nn, tasks));

  const auto moves = nn.balance(rng, /*tolerance=*/2);
  nn.check_invariants();
  rows.push_back(measure("after balancer", nn, tasks));

  Table t({"phase", "replica spread", "locally matched", "random-filled", "base avg I/O",
           "opass avg I/O"});
  for (const auto& r : rows)
    t.add_row({r.phase, Table::num(r.spread, 0), Table::integer(r.locally_matched),
               Table::integer(r.filled), Table::num(r.base_avg_io, 2),
               Table::num(r.opass_avg_io, 2)});
  std::fputs(t.render().c_str(), stdout);
  std::printf("balancer moved %u replicas\n\n", moves);
}

}  // namespace

int main() {
  // Generous quotas (the paper's ~10 chunks/process): the matcher absorbs
  // the skew and stays full.
  run_scenario(640);
  // Tight quotas (~2 chunks/process): decommission-induced skew makes full
  // matchings fail — Section IV-B's motivating case for the random fill.
  run_scenario(128);
  std::printf("Decommissioning skews the layout (larger replica spread) — exactly the\n"
              "situation Section IV-B cites for why a full matching may not exist; the\n"
              "random-fill fallback covers the gap and the balancer restores it.\n");
  return 0;
}
