// perf_service — reproducible planning-service throughput benchmark.
//
// Replays a fixed-seed synthetic job-arrival stream through
// core::PlannerService at several cluster sizes and emits a machine-readable
// JSON report (BENCH_planner.json by default, joining perf_planner's
// scenario namespace under service-* names):
//
//   perf_service                      # full matrix -> BENCH_planner.json
//   perf_service --smoke              # small scenarios, fewer repeats (CI)
//   perf_service --out=path.json
//
// Per scenario it measures every advance_to()/drain() call with the host
// steady clock and attributes the call's wall time to the jobs planned in
// it: the per-job planning latencies give P50/P99, and the sustained
// plan-requests/sec is jobs divided by total planning wall time. The
// repeat with the lowest total wall time is reported (same virtual trace
// every repeat, so repeats measure the solver, not allocation churn —
// the service's FlowWorkspace is warm after the first batch).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "opass/opass.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Scenario {
  const char* name;
  std::uint32_t nodes;
  std::uint32_t jobs;
  std::uint32_t tasks_per_job;
  std::uint32_t tenants;     ///< jobs cycle tenant = job % tenants
  double arrival_gap_s;      ///< virtual seconds between consecutive arrivals
  double batch_window_s;     ///< service coalescing window
  std::uint64_t seed;
  std::uint32_t repeats;
  bool smoke;  ///< included in the --smoke matrix
};

constexpr Scenario kScenarios[] = {
    {"service-64n-640t", 64, 20, 32, 4, 0.05, 0.2, 11, 9, true},
    {"service-256n-2560t", 256, 40, 64, 4, 0.05, 0.2, 12, 5, true},
    {"service-1024n-8192t", 1024, 64, 128, 4, 0.05, 0.2, 13, 3, true},
};

struct ServiceResult {
  double wall_ms_min = 0;    ///< total planning wall of the best repeat
  double wall_ms_mean = 0;   ///< mean total planning wall across repeats
  double requests_per_sec = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  std::uint32_t batches = 0;
  std::uint64_t locally_matched = 0;
  std::uint64_t randomly_filled = 0;
  double local_pct = 0;
};

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

ServiceResult run_scenario(const Scenario& sc) {
  // Seeded layout: one shared dataset, one chunk per trace task, identical
  // across repeats.
  const std::uint32_t total_tasks = sc.jobs * sc.tasks_per_job;
  dfs::NameNode nn(dfs::Topology::single_rack(sc.nodes), 3);
  dfs::RandomPlacement policy;
  Rng layout_rng(sc.seed);
  const auto all_tasks =
      workload::make_single_data_workload(nn, total_tasks, policy, layout_rng);
  const auto placement = core::one_process_per_node(nn);

  core::ServiceOptions options;
  options.seed = sc.seed * 7919 + 1;
  options.batch_window = sc.batch_window_s;

  ServiceResult out;
  double total_ms_sum = 0;
  std::vector<double> best_latencies;
  for (std::uint32_t rep = 0; rep < sc.repeats; ++rep) {
    core::PlannerService service(nn, placement, options);
    for (std::uint32_t j = 0; j < sc.jobs; ++j) {
      core::JobRequest request;
      request.tenant = j % sc.tenants;
      request.weight = 1.0 + static_cast<double>(request.tenant % 2);
      request.arrival = static_cast<double>(j) * sc.arrival_gap_s;
      const std::size_t begin = static_cast<std::size_t>(j) * sc.tasks_per_job;
      request.tasks.assign(all_tasks.begin() + static_cast<std::ptrdiff_t>(begin),
                           all_tasks.begin() +
                               static_cast<std::ptrdiff_t>(begin + sc.tasks_per_job));
      (void)service.submit(std::move(request));
    }

    // Advance through the arrival stream, then drain; attribute each call's
    // wall time to the jobs it planned.
    std::vector<double> latencies;
    latencies.reserve(sc.jobs);
    double total_ms = 0;
    const auto timed_step = [&](auto&& step) {
      const std::uint64_t before = service.counters().jobs_planned;
      const auto t0 = std::chrono::steady_clock::now();
      step();
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      total_ms += ms;
      const std::uint64_t planned = service.counters().jobs_planned - before;
      for (std::uint64_t i = 0; i < planned; ++i) latencies.push_back(ms);
    };
    for (std::uint32_t j = 0; j < sc.jobs; ++j) {
      const double t = static_cast<double>(j) * sc.arrival_gap_s;
      timed_step([&] { service.advance_to(t); });
    }
    timed_step([&] { service.drain(); });

    total_ms_sum += total_ms;
    if (rep == 0 || total_ms < out.wall_ms_min) {
      out.wall_ms_min = total_ms;
      best_latencies = std::move(latencies);
      const auto& c = service.counters();
      out.batches = c.batches;
      out.locally_matched = c.locally_matched;
      out.randomly_filled = c.randomly_filled;
      out.local_pct = c.tasks_planned
                          ? 100.0 * static_cast<double>(c.locally_matched) /
                                static_cast<double>(c.tasks_planned)
                          : 0.0;
    }
  }
  out.wall_ms_mean = total_ms_sum / sc.repeats;
  out.requests_per_sec =
      out.wall_ms_min > 0 ? 1000.0 * sc.jobs / out.wall_ms_min : 0.0;
  std::sort(best_latencies.begin(), best_latencies.end());
  out.latency_p50_ms = percentile(best_latencies, 50);
  out.latency_p99_ms = percentile(best_latencies, 99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_planner.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: perf_service [--out=path.json] [--smoke]\n");
      return 2;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }

  std::fprintf(f, "{\n  \"bench\": \"planner\",\n  \"schema\": 1,\n  \"scenarios\": [\n");
  bool first = true;
  for (const Scenario& sc : kScenarios) {
    if (smoke && !sc.smoke) continue;
    const Scenario run = smoke ? Scenario{sc.name, sc.nodes, sc.jobs, sc.tasks_per_job,
                                          sc.tenants, sc.arrival_gap_s, sc.batch_window_s,
                                          sc.seed, std::min<std::uint32_t>(sc.repeats, 3),
                                          sc.smoke}
                               : sc;
    const ServiceResult r = run_scenario(run);

    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %u, \"tasks\": %u, "
                 "\"replication\": 3, \"seed\": %llu, \"repeats\": %u,\n"
                 "     \"wall_ms_min\": %.4f, \"wall_ms_mean\": %.4f, "
                 "\"peak_rss_kb\": %ld,\n"
                 "     \"metrics\": {\"jobs\": %u, \"batches\": %u, "
                 "\"requests_per_sec\": %.2f, \"latency_p50_ms\": %.4f, "
                 "\"latency_p99_ms\": %.4f, \"locally_matched\": %llu, "
                 "\"randomly_filled\": %llu, \"local_task_pct\": %.2f}}",
                 run.name, run.nodes, run.jobs * run.tasks_per_job,
                 static_cast<unsigned long long>(run.seed), run.repeats, r.wall_ms_min,
                 r.wall_ms_mean, peak_rss_kb(), run.jobs, r.batches, r.requests_per_sec,
                 r.latency_p50_ms, r.latency_p99_ms,
                 static_cast<unsigned long long>(r.locally_matched),
                 static_cast<unsigned long long>(r.randomly_filled), r.local_pct);

    std::printf("%-24s plan wall %9.3f ms  %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms  "
                "batches %u  local %.1f%%\n",
                run.name, r.wall_ms_min, r.requests_per_sec, r.latency_p50_ms,
                r.latency_p99_ms, r.batches, r.local_pct);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
