// DataNode admission control vs pure bandwidth sharing.
//
// The paper's contention story has two possible low-level mechanisms: all
// requests progress concurrently at degraded rates (bandwidth sharing, our
// default), or the DataNode admits a bounded number of transfers and queues
// the rest (HDFS's xceiver limit). Queueing bounds the disk head thrash, so
// a *tight* limit actually softens the baseline's worst case — a known
// effect of admission control — but it cannot create locality: Opass still
// beats the best-tuned baseline by ~2.7x on average I/O.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"

int main() {
  using namespace opass;

  std::printf("Admission-control ablation: 64 nodes, 640 chunks, xceiver limit sweep\n\n");
  Table t({"max serves/node", "base avg I/O", "base p99", "base makespan", "opass avg I/O",
           "opass makespan"});
  for (std::uint32_t limit : {0u, 2u, 4u, 8u}) {
    exp::ExperimentConfig cfg;
    cfg.nodes = 64;
    cfg.seed = 33;
    cfg.cluster.max_concurrent_serves = limit;
    const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
    const auto op = exp::run_single_data(cfg, 640, exp::Method::kOpass);
    t.add_row({limit == 0 ? "unlimited" : Table::integer(limit), Table::num(base.io.mean, 2),
               Table::num(base.io.p99, 2), Table::num(base.makespan, 1),
               Table::num(op.io.mean, 2), Table::num(op.makespan, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nA tight limit bounds the disk thrash and improves the baseline's tail —\n"
              "admission control is a partial DFS-side mitigation — yet every setting\n"
              "leaves the ~3x locality gap that only assignment (Opass) removes.\n");
  return 0;
}
