// Delay scheduling vs Opass (related-work comparison).
//
// The paper's related work: "Delay scheduling allows tasks to wait for a
// small amount of time for achieving locality computation ... These methods
// mainly focus on managing or scheduling the distributed cluster resources
// and our method is orthogonal to them." Here the two meet head-on in the
// dynamic master–worker setting: delay scheduling buys locality with idle
// waiting at dispatch time; Opass buys it by matching ahead of time and
// never waits. Sweep the delay budget D and compare.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

}  // namespace

int main() {
  const std::uint32_t nodes = 64;
  const std::uint32_t chunks = 640;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(1618);
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);
  std::vector<dfs::NodeId> placement;
  for (dfs::NodeId n = 0; n < nodes; ++n) placement.push_back(n);

  std::printf("Delay scheduling vs Opass: %u nodes, %u chunks, dynamic dispatch\n\n", nodes,
              chunks);

  Table t({"scheduler", "local %", "avg I/O (s)", "makespan (s)"});

  {
    // Locality-blind FIFO (the paper's default dynamic baseline).
    Rng q(5);
    runtime::MasterWorkerSource src(chunks, q);
    sim::Cluster cluster(nodes);
    Rng exec_rng(9);
    const auto r = runtime::execute(cluster, nn, tasks, src, exec_rng);
    t.add_row({"fifo (blind)", Table::num(100 * r.trace.local_fraction(), 1),
               Table::num(summarize(r.trace.io_times()).mean, 2),
               Table::num(r.makespan, 1)});
  }
  for (const Seconds delay : {0.0, 0.5, 1.0, 3.0, 10.0}) {
    Rng q(5);
    runtime::DelaySchedulingSource src(nn, tasks, placement, q, delay);
    sim::Cluster cluster(nodes);
    Rng exec_rng(9);
    const auto r = runtime::execute(cluster, nn, tasks, src, exec_rng);
    char name[64];
    std::snprintf(name, sizeof name, "delay D=%.1fs", delay);
    t.add_row({name, Table::num(100 * r.trace.local_fraction(), 1),
               Table::num(summarize(r.trace.io_times()).mean, 2),
               Table::num(r.makespan, 1)});
  }
  {
    Rng arng(5);
    const auto plan = core::plan({&nn, &tasks, &placement, &arng});
    core::OpassDynamicSource src(plan.assignment, nn, tasks, placement);
    sim::Cluster cluster(nodes);
    Rng exec_rng(9);
    const auto r = runtime::execute(cluster, nn, tasks, src, exec_rng);
    t.add_row({"opass dynamic", Table::num(100 * r.trace.local_fraction(), 1),
               Table::num(summarize(r.trace.io_times()).mean, 2),
               Table::num(r.makespan, 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nLocal-first scanning (delay D=0) already recovers most locality in the\n"
              "dynamic setting; the delay budget closes the remaining gap by waiting.\n"
              "Opass reaches full locality with zero dispatch-time waiting and a better\n"
              "makespan, because its matching also balances the per-process quotas.\n");
  return 0;
}
