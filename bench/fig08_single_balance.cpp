// Figure 8 — access-pattern balance for Parallel Single-Data Access.
//
// (a,b) max/avg/min bytes served per node vs cluster size {16,32,48,64,80},
//       baseline vs Opass;
// (c)   bytes served by every node on the 64-node / 640-chunk run (the paper:
//       baseline max >1400 MB vs min 64 MB; Opass ~640 MB everywhere).
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/results_io.hpp"

int main() {
  using namespace opass;

  const std::uint32_t sizes[] = {16, 32, 48, 64, 80};
  const std::uint64_t kSeeds = 5;
  std::printf("Figure 8(a,b): MiB served per node vs cluster size (10 chunks/process, "
              "%llu-seed average)\n\n",
              static_cast<unsigned long long>(kSeeds));
  Table t({"nodes", "base max", "base avg", "base min", "opass max", "opass avg",
           "opass min"});
  for (auto m : sizes) {
    double b_max = 0, b_avg = 0, b_min = 0, o_max = 0, o_avg = 0, o_min = 0;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      exp::ExperimentConfig cfg;
      cfg.nodes = m;
      cfg.seed = 8 + s;
      const auto base = exp::run_single_data(cfg, m * 10, exp::Method::kBaseline);
      const auto op = exp::run_single_data(cfg, m * 10, exp::Method::kOpass);
      const auto bs = summarize(base.served_mb);
      const auto os = summarize(op.served_mb);
      b_max += bs.max;
      b_avg += bs.mean;
      b_min += bs.min;
      o_max += os.max;
      o_avg += os.mean;
      o_min += os.min;
    }
    const double k = static_cast<double>(kSeeds);
    t.add_row({Table::integer(m), Table::num(b_max / k, 0), Table::num(b_avg / k, 0),
               Table::num(b_min / k, 0), Table::num(o_max / k, 0), Table::num(o_avg / k, 0),
               Table::num(o_min / k, 0)});
  }
  std::fputs(t.render().c_str(), stdout);
  exp::maybe_write_csv("fig08_sweep", t);
  std::printf("(paper: on 80 nodes the baseline max is 1500 MB vs min 64 MB; Opass serves\n"
              " ~640 MB per node at every size)\n\n");

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 8;
  const auto base = exp::run_single_data(cfg, 640, exp::Method::kBaseline);
  const auto op = exp::run_single_data(cfg, 640, exp::Method::kOpass);

  std::printf("Figure 8(c): MiB served per node, 64 nodes, 640 chunks (every 4th node)\n\n");
  Table tc({"node", "baseline (MiB)", "opass (MiB)"});
  for (std::uint32_t n = 0; n < cfg.nodes; n += 4)
    tc.add_row({Table::integer(n), Table::num(base.served_mb[n], 0),
                Table::num(op.served_mb[n], 0)});
  std::fputs(tc.render().c_str(), stdout);
  exp::maybe_write_csv("fig08_per_node", tc);

  const auto bs = summarize(base.served_mb);
  const auto os = summarize(op.served_mb);
  std::printf("\nbaseline: min %.0f / avg %.0f / max %.0f MiB  (Jain fairness %.3f)\n",
              bs.min, bs.mean, bs.max, jain_fairness(base.served_mb));
  std::printf("opass:    min %.0f / avg %.0f / max %.0f MiB  (Jain fairness %.3f)\n", os.min,
              os.mean, os.max, jain_fairness(op.served_mb));
  std::printf("(paper: baseline node-44 serves >1400 MB while another serves 64 MB;\n"
              " with Opass every node serves ~640 MB)\n");
  return 0;
}
