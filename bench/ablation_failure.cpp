// Failure injection end to end: a storage node crashes mid-job.
//
// The runtime reacts twice: readers retry aborted reads on surviving
// replicas immediately (client-side failover), and the heartbeat monitor
// declares the node dead after the miss window, re-replicating its blocks
// (metadata-side recovery). The job completes either way; the question is
// what the crash costs — and whether Opass's locality advantage survives
// losing a node.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "sim/heartbeat.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Outcome {
  Seconds makespan;
  double avg_io;
  std::uint32_t retries;
  bool detected;
  Seconds detection;
};

Outcome run_once(bool use_opass, bool inject_failure) {
  const std::uint32_t nodes = 64;
  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(777);
  const auto tasks = workload::make_single_data_workload(nn, 640, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  runtime::Assignment assignment;
  if (use_opass) {
    Rng arng(3);
    assignment = core::plan({&nn, &tasks, &placement, &arng}).assignment;
  } else {
    assignment = runtime::rank_interval_assignment(640, nodes);
  }

  sim::Cluster cluster(nodes);
  Rng hb_rng(5);
  sim::HeartbeatMonitor monitor(cluster, nn, /*namenode_host=*/0, hb_rng);
  monitor.start(/*horizon=*/120.0);
  const dfs::NodeId victim = 17;
  if (inject_failure) cluster.fail_node(victim, 3.0);

  runtime::StaticAssignmentSource source(assignment);
  Rng exec_rng(9);
  const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
  return {r.makespan, summarize(r.trace.io_times()).mean, r.read_failures,
          monitor.declared_dead(victim), monitor.detection_time(victim)};
}

}  // namespace

int main() {
  std::printf("Node failure at t=3s during a 64-node, 640-chunk job (r=3, heartbeat\n"
              "interval 3 s, 3 misses to declare)\n\n");
  Table t({"assignment", "failure", "avg I/O (s)", "makespan (s)", "read retries",
           "detected at (s)"});
  for (const bool use_opass : {false, true}) {
    for (const bool failure : {false, true}) {
      const auto o = run_once(use_opass, failure);
      t.add_row({use_opass ? "opass" : "baseline", failure ? "node-17 crash" : "none",
                 Table::num(o.avg_io, 2), Table::num(o.makespan, 1),
                 Table::integer(o.retries),
                 o.detected ? Table::num(o.detection, 1) : "-"});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nEvery task completes despite the crash: aborted reads fail over to the\n"
              "surviving replicas, and the heartbeat monitor re-replicates the victim's\n"
              "blocks (~12 s after the crash). Opass loses the victim's local work but\n"
              "keeps its advantage — only the ~1/64th of tasks pinned there go remote.\n");
  return 0;
}
