// Failure injection end to end: a storage node crashes mid-job, scripted
// through sim::FaultPlan (DESIGN.md §11).
//
// The runtime reacts three times: readers retry aborted reads on surviving
// replicas immediately (client-side failover), the heartbeat monitor
// declares the node dead after the miss window, and the fault injector
// re-replicates the victim's blocks as real traffic that competes with the
// job's remaining reads (metadata-side recovery). The job completes either
// way; the question is what the crash costs — and whether Opass's locality
// advantage survives losing a node.
#include <cstdio>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "obs/fault_log.hpp"
#include "opass/opass.hpp"

namespace {

using namespace opass;

struct Outcome {
  Seconds makespan = 0;
  double avg_io = 0;
  std::uint32_t retries = 0;
  bool detected = false;
  Seconds detection = 0;
  sim::FaultStats stats;
};

Outcome run_once(bool use_opass, bool inject_failure) {
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 42;

  sim::FaultPlan plan;
  sim::FaultEvent crash;
  crash.at = 3.0;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = 17;
  plan.events.push_back(crash);

  sim::FaultStats stats;
  obs::FaultEventLog log;
  runtime::ExecutionResult raw;
  cfg.raw = &raw;
  if (inject_failure) {
    cfg.faults = &plan;
    cfg.fault_probe = &log;
    cfg.fault_stats = &stats;
  }

  const auto out = exp::run_single_data(cfg, 640,
                                        use_opass ? exp::Method::kOpass
                                                  : exp::Method::kBaseline);

  Outcome o;
  o.makespan = out.makespan;
  o.avg_io = out.io.mean;
  o.retries = raw.read_failures;
  o.stats = stats;
  for (const auto& entry : log.entries()) {
    if (entry.label.rfind("detected", 0) == 0) {
      o.detected = true;
      o.detection = entry.at;
      break;
    }
  }
  return o;
}

}  // namespace

int main() {
  std::printf("Node failure at t=3s during a 64-node, 640-chunk job (r=3, heartbeat\n"
              "interval 3 s, 3 misses to declare)\n\n");
  Table t({"assignment", "failure", "avg I/O (s)", "makespan (s)", "read retries",
           "detected at (s)", "recovered MiB"});
  for (const bool use_opass : {false, true}) {
    for (const bool failure : {false, true}) {
      const auto o = run_once(use_opass, failure);
      t.add_row({use_opass ? "opass" : "baseline", failure ? "node-17 crash" : "none",
                 Table::num(o.avg_io, 2), Table::num(o.makespan, 1),
                 Table::integer(o.retries),
                 o.detected ? Table::num(o.detection, 1) : "-",
                 failure ? Table::num(to_mib(o.stats.rereplicated_bytes), 0) : "-"});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nEvery task completes despite the crash: aborted reads fail over to the\n"
              "surviving replicas, and the injector re-replicates the victim's blocks\n"
              "(~12 s after the crash) as traffic that shares disks and NICs with the\n"
              "job. Opass loses the victim's local work but keeps its advantage —\n"
              "only the ~1/64th of tasks pinned there go remote.\n");
  return 0;
}
