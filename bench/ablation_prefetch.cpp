// I/O–compute overlap (depth-1 read-ahead) on the gene-comparison workload.
//
// An extension past the paper: once Opass makes reads local and fast, the
// remaining I/O time can be hidden under compute entirely with double
// buffering. Without Opass, prefetch helps less: the hot storage nodes are
// the bottleneck, and read-ahead only queues on them earlier.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/genomics.hpp"

namespace {

using namespace opass;

}  // namespace

int main() {
  const std::uint32_t nodes = 64;
  const std::uint32_t partitions = 640;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(55);
  workload::GenomicsSpec spec;
  spec.partition_count = partitions;
  spec.mean_compute_time = 2.0;  // compute-heavy comparisons
  spec.pareto_shape = 25.0;      // near-deterministic: isolates the overlap effect
  const auto tasks = workload::make_genomics_workload(nn, policy, rng, spec);
  const auto placement = core::one_process_per_node(nn);

  std::printf("Prefetch ablation: %u nodes, %u gene partitions, mean compute 2.0 s\n\n",
              nodes, partitions);

  Table t({"assignment", "prefetch", "avg I/O (s)", "makespan (s)", "vs compute floor"});
  // Compute floor: pure compute with zero-cost reads.
  double total_compute = 0;
  for (const auto& task : tasks) total_compute += task.compute_time;
  const double floor = total_compute / nodes;

  for (const bool use_opass : {false, true}) {
    for (const bool prefetch : {false, true}) {
      runtime::Assignment assignment;
      if (use_opass) {
        Rng arng(5);
        assignment = core::plan({&nn, &tasks, &placement, &arng}).assignment;
      } else {
        assignment = runtime::rank_interval_assignment(partitions, nodes);
      }
      sim::Cluster cluster(nodes);
      runtime::StaticAssignmentSource source(assignment);
      runtime::ExecutorConfig cfg;
      cfg.prefetch = prefetch;
      Rng exec_rng(9);
      const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng, cfg);
      t.add_row({use_opass ? "opass" : "baseline", prefetch ? "on" : "off",
                 Table::num(summarize(r.trace.io_times()).mean, 2),
                 Table::num(r.makespan, 1),
                 Table::num(r.makespan / floor, 2) + "x"});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\ncompute floor (zero-cost I/O): %.1f s per process\n", floor);
  std::printf("Opass + prefetch approaches the floor: local ~0.9 s reads hide entirely\n"
              "under 2 s compute; the baseline's remote reads are too slow to hide.\n");
  return 0;
}
