// perf_faults — deterministic fault/churn scenario suite with gated metrics.
//
// Each scenario arms a scripted sim::FaultPlan (DESIGN.md §11) on a
// fixed-seed run and reports the outcome the failure model promises:
//
//   crash-64n-640t-r3        fail-stop mid-job; heartbeat detection +
//                            re-replication traffic competing with reads
//   straggler-64n-512t-dyn   slow node at 0.25x under the dynamic
//                            master-worker scheduler, later restored
//   churn-64n-640t-r2        join + rebalance + graceful decommission at r=2
//   drain-64n-320t-r1        decommission at r=1 — the only safe way to
//                            remove a node that holds sole replicas
//   hotset-spread-64n-256t   skewed (Zipf) hot-file popularity on spread
//                            placement, hottest node crashing mid-job
//
// Every recovery decision is deterministic (no RNG), so the embedded
// metrics are exact simulation outputs: any drift means behaviour changed.
// CI gates makespan_s and degree_of_imbalance via tools/bench_compare.py.
//
//   perf_faults                      # full matrix -> BENCH_faults.json
//   perf_faults --smoke              # same matrix (all scenarios are small)
//   perf_faults --out=path.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "dfs/placement.hpp"
#include "exp/experiment.hpp"
#include "obs/analytics.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "sim/fault_plan.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

struct Outcome {
  Seconds makespan = 0;
  double degree_of_imbalance = 0;
  double local_pct = 0;
  std::uint64_t read_failures = 0;
  sim::FaultStats faults;
};

sim::FaultEvent make_event(Seconds at, sim::FaultKind kind, dfs::NodeId node) {
  sim::FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.node = node;
  return ev;
}

Outcome reduce(const exp::RunOutput& out, const runtime::ExecutionResult& raw,
               std::uint32_t nodes, const sim::FaultStats& stats) {
  const auto analytics = obs::analyze_execution(raw, nodes);
  Outcome o;
  o.makespan = out.makespan;
  o.degree_of_imbalance = analytics.serve_bytes.degree_of_imbalance;
  o.local_pct = 100.0 * out.local_fraction;
  o.read_failures = raw.read_failures;
  o.faults = stats;
  return o;
}

/// Fail-stop crash at t=3s into a 64-node single-data job: client-side
/// failover keeps every task completing while re-replication traffic shares
/// the disks and NICs with the remaining reads.
Outcome run_crash() {
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 42;
  sim::FaultPlan plan;
  plan.events.push_back(make_event(3.0, sim::FaultKind::kCrash, 17));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;
  const auto out = exp::run_single_data(cfg, 640, exp::Method::kOpass);
  return reduce(out, raw, cfg.nodes, stats);
}

/// Straggler under the dynamic scheduler: node 5 degrades to 0.25x at t=2s
/// and recovers at t=45s. Work stealing drains the slow node's list; no
/// membership event fires, so no re-plan — the outcome isolates the
/// scheduler's straggler tolerance.
Outcome run_straggler() {
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 11;
  sim::FaultPlan plan;
  auto slow = make_event(2.0, sim::FaultKind::kSlow, 5);
  slow.factor = 0.25;
  plan.events.push_back(slow);
  plan.events.push_back(make_event(45.0, sim::FaultKind::kRestore, 5));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;
  const auto out = exp::run_dynamic(cfg, 512, exp::Method::kOpass);
  return reduce(out, raw, cfg.nodes, stats);
}

/// Membership churn at r=2: an empty node joins at t=2s, the balancer
/// spreads load onto it at t=8s, and node 3 gracefully drains at t=20s.
/// Rebalance + drain copies are real traffic competing with the job.
Outcome run_churn() {
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.replication = 2;
  cfg.seed = 7;
  sim::FaultPlan plan;
  auto join = make_event(2.0, sim::FaultKind::kJoin, dfs::kInvalidNode);
  join.rack = 0;
  plan.events.push_back(join);
  auto rebalance = make_event(8.0, sim::FaultKind::kRebalance, dfs::kInvalidNode);
  rebalance.tolerance = 2;
  plan.events.push_back(rebalance);
  plan.events.push_back(make_event(20.0, sim::FaultKind::kDecommission, 3));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;
  const auto out = exp::run_single_data(cfg, 640, exp::Method::kOpass);
  // The join extends the cluster to 65 nodes; late reads may hit it.
  return reduce(out, raw, cfg.nodes + 1, stats);
}

/// Graceful drain at r=1: every chunk on node 9 has no other replica, so a
/// crash would lose data — decommission moves them away first. The gate
/// checks lost_chunks stays 0.
Outcome run_drain_r1() {
  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.replication = 1;
  cfg.seed = 5;
  sim::FaultPlan plan;
  plan.events.push_back(make_event(2.0, sim::FaultKind::kDecommission, 9));
  sim::FaultStats stats;
  runtime::ExecutionResult raw;
  cfg.faults = &plan;
  cfg.fault_stats = &stats;
  cfg.raw = &raw;
  const auto out = exp::run_single_data(cfg, 320, exp::Method::kOpass);
  return reduce(out, raw, cfg.nodes, stats);
}

/// Skewed hot-file popularity (Zipf s=1 over 8 files) on spread placement
/// (arXiv:1808.07545), with node 0 crashing mid-job. Spread's per-node
/// fill counters keep hot chunks fanned out, so the crash costs ~1/64th of
/// the replicas rather than a hot spot.
Outcome run_hotset() {
  const std::uint32_t nodes = 64;
  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::SpreadPlacement policy;
  Rng layout_rng(21);
  workload::SkewedWorkloadParams wp;
  wp.file_count = 8;
  wp.chunks_per_file = 16;
  wp.task_count = 256;
  wp.zipf_s = 1.0;
  const auto tasks = workload::make_skewed_workload(nn, wp, policy, layout_rng);
  const auto placement = core::one_process_per_node(nn);
  Rng assign_rng(22);
  const auto plan = core::plan({&nn, &tasks, &placement, &assign_rng});

  sim::FaultPlan fplan;
  fplan.events.push_back(make_event(2.0, sim::FaultKind::kCrash, 0));
  sim::Cluster cluster(nodes, {});
  Rng hb_rng(23);
  sim::HeartbeatMonitor monitor(cluster, nn, /*namenode_host=*/0, hb_rng);
  sim::FaultInjector injector(cluster, nn, monitor, fplan);
  injector.arm();
  monitor.start(fplan.horizon);

  runtime::StaticAssignmentSource source(plan.assignment);
  runtime::ExecutorConfig ec;
  ec.process_count = static_cast<std::uint32_t>(placement.size());
  Rng exec_rng(24);
  const auto exec = runtime::execute(cluster, nn, tasks, source, exec_rng, ec);

  const auto analytics = obs::analyze_execution(exec, nodes);
  Outcome o;
  o.makespan = exec.makespan;
  o.degree_of_imbalance = analytics.serve_bytes.degree_of_imbalance;
  o.local_pct = 100.0 * exec.trace.local_fraction();
  o.read_failures = exec.read_failures;
  o.faults = injector.stats();
  return o;
}

struct Scenario {
  const char* name;
  std::uint32_t nodes;
  std::uint32_t tasks;
  std::uint32_t replication;
  std::uint64_t seed;
  std::uint32_t repeats;
  Outcome (*run)();
};

constexpr Scenario kScenarios[] = {
    {"crash-64n-640t-r3", 64, 640, 3, 42, 3, run_crash},
    {"straggler-64n-512t-dyn", 64, 512, 3, 11, 3, run_straggler},
    {"churn-64n-640t-r2", 64, 640, 2, 7, 3, run_churn},
    {"drain-64n-320t-r1", 64, 320, 1, 5, 3, run_drain_r1},
    {"hotset-spread-64n-256t", 64, 256, 3, 21, 3, run_hotset},
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // Every scenario is 64 nodes; the full matrix *is* the smoke matrix.
    } else {
      std::fprintf(stderr, "usage: perf_faults [--out=path.json] [--smoke]\n");
      return 2;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }

  std::fprintf(f, "{\n  \"bench\": \"faults\",\n  \"schema\": 1,\n  \"scenarios\": [\n");
  bool first = true;
  for (const Scenario& sc : kScenarios) {
    double wall_ms_min = 0, total_ms = 0;
    Outcome o;
    for (std::uint32_t rep = 0; rep < sc.repeats; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      o = sc.run();  // deterministic: every repeat observes the same outcome
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      total_ms += ms;
      if (rep == 0 || ms < wall_ms_min) wall_ms_min = ms;
    }

    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"nodes\": %u, \"tasks\": %u, "
                 "\"replication\": %u, \"seed\": %llu, \"repeats\": %u,\n"
                 "     \"wall_ms_min\": %.4f, \"wall_ms_mean\": %.4f,\n"
                 "     \"metrics\": {\"makespan_s\": %.4f, "
                 "\"degree_of_imbalance\": %.4f, \"local_pct\": %.2f, "
                 "\"read_failures\": %llu, \"rereplicated_mib\": %.2f, "
                 "\"replicas_copied\": %u, \"recoveries\": %u, "
                 "\"lost_chunks\": %u, \"aborted_copies\": %u}}",
                 sc.name, sc.nodes, sc.tasks, sc.replication,
                 static_cast<unsigned long long>(sc.seed), sc.repeats, wall_ms_min,
                 total_ms / sc.repeats, o.makespan, o.degree_of_imbalance, o.local_pct,
                 static_cast<unsigned long long>(o.read_failures),
                 to_mib(o.faults.rereplicated_bytes), o.faults.replicas_copied,
                 o.faults.recoveries, o.faults.lost_chunks, o.faults.aborted_copies);

    std::printf("%-24s makespan %8.2f s  DoI %6.3f  local %5.1f%%  copies %4u  "
                "lost %u\n",
                sc.name, o.makespan, o.degree_of_imbalance, o.local_pct,
                o.faults.replicas_copied, o.faults.lost_chunks);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
