// plan_tool — compute, save, inspect and verify Opass plans offline.
//
// The matcher is a pre-execution step: in a deployment it runs once in the
// job-submission process and the per-process task lists ship to the workers.
// This tool exercises that flow end to end on a synthetic layout:
//
//   plan_tool --nodes=64 --chunks=640 --out=plan.txt      # compute + save
//   plan_tool --verify=plan.txt --nodes=64 --chunks=640   # reload + check
#include <cstdio>

#include "common/options.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

int main(int argc, char** argv) {
  using namespace opass;

  Options opts;
  opts.add("nodes", "64", "cluster size")
      .add("chunks", "640", "chunk files in the dataset")
      .add("replication", "3", "replication factor")
      .add("seed", "42", "layout seed")
      .add("matcher", "flow", "flow | weighted | rack-aware | algorithm1")
      .add("out", "", "write the plan to this file")
      .add("verify", "", "load a plan file and check it against the layout")
      .add("help", "false", "show usage");
  if (!opts.parse(argc, argv) || opts.boolean("help")) {
    if (!opts.error().empty()) std::fprintf(stderr, "error: %s\n", opts.error().c_str());
    std::fputs(opts.usage("plan_tool").c_str(), stderr);
    return opts.boolean("help") ? 0 : 2;
  }

  const auto nodes = static_cast<std::uint32_t>(opts.integer("nodes"));
  const auto chunks = static_cast<std::uint32_t>(opts.integer("chunks"));

  // Rebuild the (seeded) layout the plan refers to.
  dfs::NameNode nn(dfs::Topology::single_rack(nodes),
                   static_cast<std::uint32_t>(opts.integer("replication")));
  dfs::RandomPlacement policy;
  Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  if (!opts.str("verify").empty()) {
    const auto assignment = core::load_assignment(opts.str("verify"));
    const auto stats = core::evaluate_assignment(nn, tasks, assignment, placement);
    std::printf("plan %s: %u tasks over %zu processes\n", opts.str("verify").c_str(),
                stats.task_count, assignment.size());
    std::printf("locality: %.1f%% of bytes local; load %u..%u tasks/process\n",
                100 * stats.local_fraction(), stats.min_tasks_per_process,
                stats.max_tasks_per_process);
    return 0;
  }

  runtime::Assignment assignment;
  const std::string matcher = opts.str("matcher");
  Rng arng(7);
  if (matcher == "flow") {
    const auto plan = core::assign_single_data(nn, tasks, placement, arng);
    std::printf("flow matcher: %u locally matched, %u filled, full=%s\n",
                plan.locally_matched, plan.randomly_filled,
                plan.full_matching ? "yes" : "no");
    assignment = plan.assignment;
  } else if (matcher == "weighted") {
    const auto plan = core::assign_single_data_weighted(nn, tasks, placement, arng);
    std::printf("weighted matcher: %.1f%% bytes local, load %s..%s per process\n",
                100 * plan.local_fraction(), format_bytes(plan.min_process_bytes).c_str(),
                format_bytes(plan.max_process_bytes).c_str());
    assignment = plan.assignment;
  } else if (matcher == "rack-aware") {
    const auto plan = core::assign_single_data_rack_aware(nn, tasks, placement, arng);
    std::printf("rack-aware matcher: %u node-local, %u rack-local, %u filled\n",
                plan.node_local, plan.rack_local, plan.random_filled);
    assignment = plan.assignment;
  } else if (matcher == "algorithm1") {
    const auto plan = core::assign_multi_data(nn, tasks, placement);
    std::printf("algorithm 1: %.1f%% bytes matched, %u reassignments\n",
                100 * plan.matched_fraction(), plan.reassignments);
    assignment = plan.assignment;
  } else {
    std::fprintf(stderr, "unknown matcher '%s'\n", matcher.c_str());
    return 2;
  }

  const auto stats = core::evaluate_assignment(nn, tasks, assignment, placement);
  std::printf("plan quality: %.1f%% of bytes local, %u..%u tasks/process\n",
              100 * stats.local_fraction(), stats.min_tasks_per_process,
              stats.max_tasks_per_process);

  if (!opts.str("out").empty()) {
    core::save_assignment(opts.str("out"), assignment, chunks);
    std::printf("plan written to %s\n", opts.str("out").c_str());
  }
  return 0;
}
