// plan_tool — compute, save, inspect and verify Opass plans offline.
//
// The matcher is a pre-execution step: in a deployment it runs once in the
// job-submission process and the per-process task lists ship to the workers.
// This tool exercises that flow end to end on a synthetic layout:
//
//   plan_tool --nodes=64 --chunks=640 --out=plan.txt      # compute + save
//   plan_tool --verify=plan.txt --nodes=64 --chunks=640   # reload + check
//
// Planning goes through the unified core::plan() facade; --matcher selects
// the PlannerKind and --algorithm the max-flow solver.
#include <cstdio>
#include <stdexcept>

#include "common/options.hpp"
#include "opass/opass.hpp"
#include "workload/dataset.hpp"

int main(int argc, char** argv) {
  using namespace opass;

  Options opts;
  opts.add("nodes", "64", "cluster size")
      .add("chunks", "640", "chunk files in the dataset")
      .add("replication", "3", "replication factor")
      .add("seed", "42", "layout seed")
      .add("matcher", "flow", "flow | weighted | rack-aware | algorithm1")
      .add("algorithm", "dinic", "max-flow solver: dinic | edmonds-karp")
      .add("out", "", "write the plan to this file")
      .add("verify", "", "load a plan file and check it against the layout")
      .add("help", "false", "show usage");
  if (!opts.parse(argc, argv) || opts.boolean("help")) {
    if (!opts.error().empty()) std::fprintf(stderr, "error: %s\n", opts.error().c_str());
    std::fputs(opts.usage("plan_tool").c_str(), stderr);
    return opts.boolean("help") ? 0 : 2;
  }

  const auto nodes = static_cast<std::uint32_t>(opts.integer("nodes"));
  const auto chunks = static_cast<std::uint32_t>(opts.integer("chunks"));

  // Rebuild the (seeded) layout the plan refers to.
  dfs::NameNode nn(dfs::Topology::single_rack(nodes),
                   static_cast<std::uint32_t>(opts.integer("replication")));
  dfs::RandomPlacement policy;
  Rng rng(static_cast<std::uint64_t>(opts.integer("seed")));
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  if (!opts.str("verify").empty()) {
    const auto assignment = core::load_assignment(opts.str("verify"));
    const auto stats = core::evaluate_assignment(nn, tasks, assignment, placement);
    std::printf("plan %s: %u tasks over %zu processes\n", opts.str("verify").c_str(),
                stats.task_count, assignment.size());
    std::printf("locality: %.1f%% of bytes local; load %u..%u tasks/process\n",
                100 * stats.local_fraction(), stats.min_tasks_per_process,
                stats.max_tasks_per_process);
    return 0;
  }

  core::PlanOptions popts;
  const std::string matcher = opts.str("matcher");
  if (matcher == "flow") {
    popts.planner = core::PlannerKind::kSingleData;
  } else if (matcher == "weighted") {
    popts.planner = core::PlannerKind::kWeighted;
  } else if (matcher == "rack-aware") {
    popts.planner = core::PlannerKind::kRackAware;
  } else if (matcher == "algorithm1") {
    popts.planner = core::PlannerKind::kMultiData;
  } else {
    std::fprintf(stderr, "unknown matcher '%s'\n", matcher.c_str());
    return 2;
  }
  try {
    popts.algorithm = graph::parse_max_flow_algorithm(opts.str("algorithm"));
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "unknown algorithm '%s' (dinic | edmonds-karp)\n",
                 opts.str("algorithm").c_str());
    return 2;
  }

  Rng arng(7);
  const auto result = core::plan({&nn, &tasks, &placement, &arng}, popts);
  std::printf("%s planner (%s): %u matched, %u filled, %u rack-local, %u reassignments\n",
              core::planner_kind_name(result.planner),
              graph::max_flow_algorithm_name(popts.algorithm), result.locally_matched,
              result.randomly_filled, result.rack_local, result.reassignments);
  std::printf("plan quality: %.1f%% of bytes local, %u..%u tasks/process\n",
              100 * result.local_fraction(), result.stats.min_tasks_per_process,
              result.stats.max_tasks_per_process);

  if (!opts.str("out").empty()) {
    core::save_assignment(opts.str("out"), result.assignment, chunks);
    std::printf("plan written to %s\n", opts.str("out").c_str());
  }
  return 0;
}
