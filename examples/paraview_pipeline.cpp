// ParaView-style visualization pipeline (the Section V-B scenario).
//
// Models pvbatch driving a MultiBlock dataset series: a meta-file indexes
// 640 VTK sub-datasets; every rendering step reads 64 of them (~3.8 GB) on
// 64 data-server processes and renders. With Opass, the reader's data
// assignment (the ReadXMLData() hook) is computed by the matching-based
// assigner instead of by process rank, so each data server's pieces are
// locally accessible.
//
// Usage: paraview_pipeline [nodes] [datasets] [datasets_per_step]
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.hpp"

int main(int argc, char** argv) {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  cfg.seed = 2015;

  workload::ParaViewSpec spec;
  if (argc > 2) spec.dataset_count = static_cast<std::uint32_t>(std::atoi(argv[2]));
  if (argc > 3) spec.datasets_per_step = static_cast<std::uint32_t>(std::atoi(argv[3]));

  std::printf("ParaView MultiBlock pipeline: %u nodes, %u datasets (%.1f GiB), "
              "%u per rendering step\n\n",
              cfg.nodes, spec.dataset_count,
              to_gib(static_cast<Bytes>(spec.dataset_count) * spec.bytes_per_dataset),
              spec.datasets_per_step);

  for (auto method : {exp::Method::kBaseline, exp::Method::kOpass}) {
    const auto out = exp::run_paraview(cfg, method, spec);
    std::printf("%-22s  read avg %.2fs (stddev %.3f)  local %5.1f%%  total %.0fs\n",
                method == exp::Method::kBaseline ? "rank-based reader:" : "opass reader:",
                out.run.io.mean, out.run.io.stddev, 100 * out.run.local_fraction,
                out.total_time);
    std::printf("  step times:");
    for (Seconds t : out.step_times) std::printf(" %.1f", t);
    std::printf(" s\n\n");
  }
  std::printf("The rank-based reader's slow steps are renders stalled on one hot storage\n"
              "node; the Opass reader keeps every step near the local-read floor.\n");
  return 0;
}
