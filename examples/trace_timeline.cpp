// trace_timeline — render the serving activity of every storage node as an
// ASCII Gantt chart, baseline vs Opass. The baseline's picture is the
// paper's Figure 1 made visible: a few lanes solid with remote serves while
// others sit empty; with Opass every lane carries one tidy local stripe.
//
// Usage: trace_timeline [nodes] [chunks]
#include <cstdio>
#include <cstdlib>

#include "common/timeline.hpp"
#include "opass/opass.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_source.hpp"
#include "workload/dataset.hpp"

namespace {

using namespace opass;

void show(const char* title, const sim::TraceRecorder& trace, std::uint32_t nodes,
          Seconds horizon) {
  Timeline tl(0.0, horizon, nodes, 72);
  for (const auto& r : trace.records())
    tl.add(r.serving_node, r.issue_time, r.end_time, r.local ? 'L' : 'R');

  std::vector<std::string> labels;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "node-%02u", n);
    labels.push_back(buf);
  }
  std::printf("%s  (L = serving local read, R = serving remote read)\n", title);
  std::fputs(tl.render(labels).c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint32_t chunks = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                                        : nodes * 3;

  dfs::NameNode nn(dfs::Topology::single_rack(nodes), 3, kDefaultChunkSize);
  dfs::RandomPlacement policy;
  Rng rng(99);
  const auto tasks = workload::make_single_data_workload(nn, chunks, policy, rng);
  const auto placement = core::one_process_per_node(nn);

  std::printf("Serving timelines: %u nodes, %u chunks of 64 MiB, r=3\n\n", nodes, chunks);

  sim::TraceRecorder base_trace, opass_trace;
  Seconds base_end = 0, opass_end = 0;
  {
    sim::Cluster cluster(nodes);
    runtime::StaticAssignmentSource source(runtime::rank_interval_assignment(chunks, nodes));
    Rng exec_rng(7);
    const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
    base_trace = r.trace;
    base_end = r.makespan;
  }
  {
    Rng arng(5);
    const auto plan = core::plan({&nn, &tasks, &placement, &arng});
    sim::Cluster cluster(nodes);
    runtime::StaticAssignmentSource source(plan.assignment);
    Rng exec_rng(7);
    const auto r = runtime::execute(cluster, nn, tasks, source, exec_rng);
    opass_trace = r.trace;
    opass_end = r.makespan;
  }

  const Seconds horizon = std::max(base_end, opass_end) * 1.02;
  show("rank-interval baseline", base_trace, nodes, horizon);
  show("opass", opass_trace, nodes, horizon);
  std::printf("baseline makespan %.1f s; opass makespan %.1f s\n", base_end, opass_end);
  return 0;
}
