// opass_cli — run any paper scenario from the command line.
//
//   opass_cli --scenario=single --nodes=64 --tasks=640 --method=opass
//   opass_cli --scenario=paraview --method=both --csv
//   opass_cli --scenario=dynamic --nodes=128 --seed=7 --compute=0.4
//   opass_cli --scenario=single --method=opass --audit
//   opass_cli --scenario=single --metrics-out=metrics.json --trace-out=trace.json
//   opass_cli --service-trace=bench/traces/service_small.trace --batch-window=0.5
//   opass_cli --scenario=single --fault-plan=bench/faults/crash.json --method=both
//   opass_cli --scenario=single --threads=4      # same bytes, less wall clock
//
// Fault injection: --fault-plan loads a JSON fault/churn scenario
// (sim/fault_plan.hpp documents the format) and arms it on each run's
// cluster — crashes, stragglers, joins, drains and rebalances play out as
// scripted virtual-time events whose recovery traffic competes with the
// run's reads. The fault summary prints after the method table; fault
// markers join --trace-out as instant events and --report-html/--timeline-out
// as timeline.faults.* series.
//
// Prints the run's headline metrics as a table, or the per-op I/O series as
// CSV with --csv (ready for plotting). With --audit the scenario's plan is
// built but not simulated: the static auditor (plan_audit.hpp) checks the
// assignment's invariants and the exit code reports the verdict.
//
// Observability: --metrics-out writes the run's metric registry (JSON, or
// CSV when the path ends in .csv; byte-identical across runs of one seed),
// --trace-out writes a Chrome trace-event file (open in chrome://tracing or
// ui.perfetto.dev; with --method=both the two methods appear as separate
// process groups), and --hotspots prints the per-node serving report.
// --timeline-out samples the run at --sample-interval virtual seconds and
// writes the series + imbalance analytics as JSON; --report-html renders the
// same data as one self-contained HTML page (inline SVG charts, no external
// assets). Both are byte-identical across runs of one seed. When --trace-out
// is also given, the cluster-wide series join the trace as counter tracks.
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/experiment.hpp"
#include "graph/max_flow.hpp"
#include "obs/analytics.hpp"
#include "obs/attribution.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/fault_log.hpp"
#include "obs/hotspot.hpp"
#include "obs/metrics_io.hpp"
#include "obs/report.hpp"
#include "exp/service_trace.hpp"
#include "opass/plan_audit.hpp"

namespace {

using namespace opass;

/// Observability sinks threaded through a run; any member may be null/off.
struct ObsSinks {
  obs::MetricsRegistry* metrics = nullptr;
  obs::ChromeTraceBuilder* trace = nullptr;
  bool hotspots = false;
  /// When set, each run records a timeline (one recorder per method, owned
  /// by `timelines`) and registers a MethodReport with the builder.
  obs::ReportBuilder* report = nullptr;
  std::vector<std::unique_ptr<obs::TimelineRecorder>>* timelines = nullptr;
  double sample_interval = 0.5;
  /// When set, each run records a causal span log (one per method, owned by
  /// `span_logs`) and registers it with the doc builder — the --spans-out /
  /// --critical-path pipeline (DESIGN.md §13).
  obs::SpanDocBuilder* span_doc = nullptr;
  std::vector<std::unique_ptr<obs::SpanLog>>* span_logs = nullptr;
  /// When set, each run arms this fault/churn scenario on its cluster.
  const sim::FaultPlan* faults = nullptr;
};

int run_method(const std::string& scenario, exp::Method method,
               const exp::ExperimentConfig& cfg, std::uint32_t tasks, double compute,
               bool csv, Table& table, const ObsSinks& sinks = {}) {
  exp::ExperimentConfig run_cfg = cfg;
  runtime::ExecutionResult raw;
  run_cfg.metrics = sinks.metrics;
  if (sinks.trace != nullptr || sinks.hotspots || sinks.report != nullptr)
    run_cfg.raw = &raw;
  obs::TimelineRecorder* recorder = nullptr;
  if (sinks.report != nullptr) {
    obs::TimelineRecorder::Options topt;
    topt.interval = sinks.sample_interval;
    recorder = sinks.timelines->emplace_back(
        std::make_unique<obs::TimelineRecorder>(topt)).get();
    run_cfg.timeline = recorder;
  }
  obs::SpanLog* span_log = nullptr;
  if (sinks.span_doc != nullptr) {
    span_log = sinks.span_logs->emplace_back(std::make_unique<obs::SpanLog>()).get();
    run_cfg.spans = span_log;
  }
  std::unique_ptr<obs::FaultEventLog> fault_log;
  sim::FaultStats fault_stats;
  if (sinks.faults != nullptr) {
    fault_log = std::make_unique<obs::FaultEventLog>(recorder);
    run_cfg.faults = sinks.faults;
    run_cfg.fault_probe = fault_log.get();
    run_cfg.fault_stats = &fault_stats;
  }

  exp::RunOutput out;
  if (scenario == "single") {
    out = exp::run_single_data(run_cfg, tasks, method);
  } else if (scenario == "multi") {
    out = exp::run_multi_data(run_cfg, tasks, method);
  } else if (scenario == "dynamic") {
    workload::GenomicsSpec spec;
    spec.mean_compute_time = compute;
    out = exp::run_dynamic(run_cfg, tasks, method, spec);
  } else if (scenario == "paraview") {
    workload::ParaViewSpec spec;
    spec.dataset_count = tasks;
    spec.datasets_per_step = std::min(tasks, cfg.nodes);
    out = exp::run_paraview(run_cfg, method, spec).run;
  } else if (scenario == "iterative") {
    out = exp::run_iterative(run_cfg, tasks, /*epochs=*/4, method, compute).run;
  } else {
    std::fprintf(stderr, "unknown scenario '%s' (single|multi|dynamic|paraview|iterative)\n",
                 scenario.c_str());
    return 1;
  }

  const std::uint32_t pid = method == exp::Method::kBaseline ? 0 : 1;
  if (sinks.trace != nullptr) {
    // One trace process group per method, so --method=both renders both
    // timelines side by side.
    sinks.trace->set_process_name(pid, exp::method_name(method));
    sinks.trace->add_execution(raw, pid);
  }
  if (span_log != nullptr) {
    sinks.span_doc->add_method(exp::method_name(method), *span_log, cfg.nodes);
    // Overlay the critical path's cross-process hops on the Chrome trace as
    // flow arrows — only when both sinks are active, so a plain --trace-out
    // stays byte-identical to earlier releases.
    if (sinks.trace != nullptr)
      obs::add_critical_path_flows(*sinks.trace, *span_log,
                                   sinks.span_doc->path(sinks.span_doc->method_count() - 1),
                                   pid);
  }
  if (recorder != nullptr) {
    obs::MethodReport mr;
    mr.name = exp::method_name(method);
    mr.timeline = recorder;
    mr.analytics = obs::analyze_execution(raw, cfg.nodes);
    mr.makespan = out.makespan;
    mr.local_fraction = out.local_fraction;
    mr.spans = span_log;
    mr.node_count = cfg.nodes;
    sinks.report->add_method(std::move(mr));
    if (sinks.trace != nullptr) obs::add_timeline_counters(*sinks.trace, *recorder, pid);
  }
  if (sinks.hotspots) {
    std::printf("[%s]\n%s\n", exp::method_name(method),
                obs::hotspot_report(raw.trace, cfg.nodes).render().c_str());
  }
  if (fault_log) {
    if (sinks.trace != nullptr) fault_log->add_instants(*sinks.trace, pid);
    if (!csv) {
      std::printf(
          "[%s] faults: crashes=%u slow=%u joins=%u decommissions=%u rebalances=%u "
          "recoveries=%u copies=%u copied_mib=%.1f lost_chunks=%u\n",
          exp::method_name(method), fault_stats.crashes, fault_stats.slowdowns,
          fault_stats.joins, fault_stats.decommissions, fault_stats.rebalances,
          fault_stats.recoveries, fault_stats.replicas_copied,
          to_mib(fault_stats.rereplicated_bytes), fault_stats.lost_chunks);
    }
  }

  if (csv) {
    Table series({"op", "method", "io_time_s"});
    for (std::size_t i = 0; i < out.io_times.size(); ++i)
      series.add_row({Table::integer(static_cast<long long>(i)),
                      exp::method_name(method), Table::num(out.io_times[i], 4)});
    std::fputs(series.csv().c_str(), stdout);
  } else {
    table.add_row({exp::method_name(method), Table::num(out.io.mean, 2),
                   Table::num(out.io.max, 2), Table::num(100 * out.local_fraction, 1),
                   Table::num(jain_fairness(out.served_mb), 3),
                   Table::num(out.makespan, 1)});
  }
  return 0;
}

/// --audit mode: build the scenario's plan exactly as the run would, audit
/// it, print the report. Returns 0 iff the plan is clean.
int audit_method(const std::string& scenario, exp::Method method,
                 const exp::ExperimentConfig& cfg, std::uint32_t tasks) {
  std::optional<exp::PlannedScenario> sc;
  if (scenario == "single") {
    sc = exp::plan_single_data(cfg, tasks, method);
  } else if (scenario == "multi") {
    sc = exp::plan_multi_data(cfg, tasks, method);
  } else {
    std::fprintf(stderr, "--audit supports the static-plan scenarios (single|multi), not '%s'\n",
                 scenario.c_str());
    return 2;
  }
  core::AuditOptions audit_opts;
  // Opass single-data plans must respect the paper's TotalSize/m capacity;
  // the baseline's rank intervals satisfy it too, so gate both.
  audit_opts.enforce_capacity = sc->single_data;
  const auto report = core::audit_plan(sc->nn, sc->tasks, sc->assignment, sc->placement,
                                       audit_opts);
  std::printf("audit %s/%s (n=%zu tasks, m=%zu processes): %s", scenario.c_str(),
              exp::method_name(method), sc->tasks.size(), sc->placement.size(),
              report.to_string().c_str());
  return report.ok() ? 0 : 1;
}

/// --service-trace mode: replay a job-arrival trace through the planning
/// service (no cluster simulation). Prints the replay summary; --service-out
/// writes the deterministic per-job assignment rendering, --metrics-out the
/// service counters, --timeline-out the sampled service series.
int run_service_trace(const std::string& trace_path, const exp::ExperimentConfig& cfg,
                      const Options& opts) {
  exp::ServiceTraceConfig scfg;
  scfg.nodes = cfg.nodes;
  scfg.replication = cfg.replication;
  scfg.seed = cfg.seed;
  scfg.placement = cfg.placement;
  scfg.flow_algorithm = cfg.flow_algorithm;
  scfg.batch_window = opts.real("batch-window");
  scfg.fair_share = opts.boolean("fair-share");

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TimelineRecorder> recorder;
  obs::SpanLog span_log;
  const std::string metrics_out = opts.str("metrics-out");
  const std::string timeline_out = opts.str("timeline-out");
  const std::string spans_out = opts.str("spans-out");
  const std::string critical_path_out = opts.str("critical-path");
  if (!metrics_out.empty()) scfg.metrics = &registry;
  if (!spans_out.empty() || !critical_path_out.empty()) scfg.spans = &span_log;
  if (!timeline_out.empty()) {
    obs::TimelineRecorder::Options topt;
    topt.interval = opts.real("sample-interval");
    if (!(topt.interval > 0)) {
      std::fprintf(stderr, "sample-interval must be positive\n");
      return 2;
    }
    recorder = std::make_unique<obs::TimelineRecorder>(topt);
    scfg.timeline = recorder.get();
  }

  exp::ServiceTraceOutput out;
  try {
    out = exp::replay_service_trace(scfg, exp::load_service_trace(trace_path));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("service-trace=%s nodes=%u r=%u seed=%llu window=%g fair-share=%s\n\n",
              trace_path.c_str(), cfg.nodes, cfg.replication,
              static_cast<unsigned long long>(cfg.seed), scfg.batch_window,
              scfg.fair_share ? "on" : "off");
  Table table({"jobs", "batches", "tasks", "matched", "filled", "local %",
               "max batch", "max queue"});
  table.add_row({Table::integer(static_cast<long long>(out.counters.jobs_planned)),
                 Table::integer(out.counters.batches),
                 Table::integer(static_cast<long long>(out.counters.tasks_planned)),
                 Table::integer(static_cast<long long>(out.counters.locally_matched)),
                 Table::integer(static_cast<long long>(out.counters.randomly_filled)),
                 Table::num(100 * out.local_byte_fraction, 1),
                 Table::integer(out.counters.max_batch_tasks),
                 Table::integer(out.counters.max_queue_depth)});
  std::fputs(table.render().c_str(), stdout);

  int rc = 0;
  const auto flush = [&rc](const std::string& path, const std::string& body) {
    const obs::IoStatus st = obs::write_file(path, body);
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  };
  const std::string service_out = opts.str("service-out");
  if (!service_out.empty()) flush(service_out, out.rendered);
  if (!metrics_out.empty()) {
    const obs::IoStatus st = obs::write_metrics(registry, metrics_out);
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!timeline_out.empty()) {
    obs::ReportBuilder builder;
    obs::MethodReport mr;
    mr.name = "service";
    mr.timeline = recorder.get();
    mr.makespan = recorder->end_time();
    mr.local_fraction = out.local_byte_fraction;
    builder.add_method(std::move(mr));
    flush(timeline_out, builder.timeline_json());
  }
  if (scfg.spans != nullptr) {
    obs::SpanDocBuilder doc;
    doc.add_method("service", span_log, /*node_count=*/0);
    if (!spans_out.empty()) flush(spans_out, doc.spans_json());
    if (!critical_path_out.empty()) {
      const bool json = critical_path_out.size() >= 5 &&
                        critical_path_out.rfind(".json") == critical_path_out.size() - 5;
      flush(critical_path_out,
            json ? doc.critical_path_json() : doc.critical_path_text());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add("scenario", "single", "single | multi | dynamic | paraview | iterative")
      .add("method", "both", "baseline | opass | both")
      .add("nodes", "64", "cluster size m")
      .add("tasks", "640", "tasks / chunk files / datasets")
      .add("replication", "3", "replication factor r")
      .add("seed", "42", "experiment seed")
      .add("compute", "0.0", "mean compute seconds per task (dynamic scenario)")
      .add("placement", "random", "random | hdfs-default | round-robin | spread")
      .add("fault-plan", "", "JSON fault/churn scenario armed on each run's cluster")
      .add("plan-algorithm", "dinic", "max-flow solver for Opass planning: dinic | edmonds-karp")
      .add("threads", "1",
           "worker-pool lanes for the simulator/executor/planner hot paths; "
           "output is byte-identical for every value (1 = serial)")
      .add("csv", "false", "emit per-op I/O times as CSV instead of the summary table")
      .add("audit", "false", "audit the scenario's plan statically instead of simulating")
      .add("metrics-out", "", "write run metrics to this path (.csv => CSV, else JSON)")
      .add("trace-out", "", "write a Chrome trace-event JSON file to this path")
      .add("timeline-out", "", "write sampled time series + analytics JSON to this path")
      .add("report-html", "", "write a self-contained HTML run report to this path")
      .add("sample-interval", "0.5", "timeline sampling period in virtual seconds")
      .add("spans-out", "", "write the causal span log + attribution JSON to this path")
      .add("critical-path", "",
           "write the makespan's critical path to this path (.json => JSON, else text)")
      .add("hotspots", "false", "print the per-node serving hotspot report")
      .add("service-trace", "", "replay a job-arrival trace through the planning service")
      .add("batch-window", "0.0", "service coalescing window in virtual seconds")
      .add("fair-share", "true", "per-tenant fair share of the service's locality budget")
      .add("service-out", "", "write the replay's per-job assignment rendering to this path")
      .add("help", "false", "show usage");
  if (!opts.parse(argc, argv) || opts.boolean("help")) {
    if (!opts.error().empty()) std::fprintf(stderr, "error: %s\n", opts.error().c_str());
    std::fputs(opts.usage("opass_cli").c_str(), stderr);
    return opts.boolean("help") ? 0 : 2;
  }

  exp::ExperimentConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(opts.integer("nodes"));
  cfg.replication = static_cast<std::uint32_t>(opts.integer("replication"));
  cfg.seed = static_cast<std::uint64_t>(opts.integer("seed"));
  const std::string placement = opts.str("placement");
  if (placement == "hdfs-default") {
    cfg.placement = dfs::PlacementKind::kHdfsDefault;
  } else if (placement == "round-robin") {
    cfg.placement = dfs::PlacementKind::kRoundRobin;
  } else if (placement == "spread") {
    cfg.placement = dfs::PlacementKind::kSpread;
  } else if (placement != "random") {
    std::fprintf(stderr, "unknown placement '%s'\n", placement.c_str());
    return 2;
  }
  try {
    cfg.flow_algorithm = graph::parse_max_flow_algorithm(opts.str("plan-algorithm"));
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "unknown plan-algorithm '%s' (dinic | edmonds-karp)\n",
                 opts.str("plan-algorithm").c_str());
    return 2;
  }
  const long long threads = opts.integer("threads");
  if (threads < 1) {
    std::fprintf(stderr, "threads must be >= 1\n");
    return 2;
  }
  cfg.threads = static_cast<std::uint32_t>(threads);
  // One pool for the whole invocation (instead of one per run_* call): lane
  // stats accumulate across methods for the --hotspots lane report, and the
  // workers spin up once. Output stays byte-identical either way.
  std::unique_ptr<ThreadPool> pool;
  if (cfg.threads > 1) {
    pool = std::make_unique<ThreadPool>(cfg.threads);
    cfg.pool = pool.get();
  }

  const std::string service_trace = opts.str("service-trace");
  if (!service_trace.empty()) return run_service_trace(service_trace, cfg, opts);

  std::optional<sim::FaultPlan> fault_plan;
  const std::string fault_plan_path = opts.str("fault-plan");
  if (!fault_plan_path.empty()) {
    try {
      fault_plan = sim::load_fault_plan(fault_plan_path);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  const std::string scenario = opts.str("scenario");
  const std::string method = opts.str("method");
  const auto tasks = static_cast<std::uint32_t>(opts.integer("tasks"));
  const double compute = opts.real("compute");
  const bool csv = opts.boolean("csv");

  if (opts.boolean("audit")) {
    if (method != "baseline" && method != "opass" && method != "both") {
      std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
      return 2;
    }
    int rc = 0;
    if (method == "baseline" || method == "both")
      rc |= audit_method(scenario, exp::Method::kBaseline, cfg, tasks);
    if (method == "opass" || method == "both")
      rc |= audit_method(scenario, exp::Method::kOpass, cfg, tasks);
    return rc;
  }

  const std::string metrics_out = opts.str("metrics-out");
  const std::string trace_out = opts.str("trace-out");
  const std::string timeline_out = opts.str("timeline-out");
  const std::string report_html = opts.str("report-html");
  const std::string spans_out = opts.str("spans-out");
  const std::string critical_path_out = opts.str("critical-path");
  obs::MetricsRegistry registry;
  obs::ChromeTraceBuilder trace_builder;
  obs::ReportBuilder report_builder;
  obs::SpanDocBuilder span_doc;
  std::vector<std::unique_ptr<obs::TimelineRecorder>> timelines;
  std::vector<std::unique_ptr<obs::SpanLog>> span_logs;
  ObsSinks sinks;
  if (!metrics_out.empty()) sinks.metrics = &registry;
  if (!trace_out.empty()) sinks.trace = &trace_builder;
  if (!spans_out.empty() || !critical_path_out.empty()) {
    sinks.span_doc = &span_doc;
    sinks.span_logs = &span_logs;
  }
  if (!timeline_out.empty() || !report_html.empty()) {
    sinks.report = &report_builder;
    sinks.timelines = &timelines;
    sinks.sample_interval = opts.real("sample-interval");
    if (!(sinks.sample_interval > 0)) {
      std::fprintf(stderr, "sample-interval must be positive\n");
      return 2;
    }
  }
  sinks.hotspots = opts.boolean("hotspots");
  if (fault_plan) sinks.faults = &*fault_plan;

  Table table({"method", "avg I/O (s)", "max I/O (s)", "local %", "Jain", "makespan (s)"});
  int rc = 0;
  if (method == "baseline" || method == "both")
    rc |= run_method(scenario, exp::Method::kBaseline, cfg, tasks, compute, csv, table, sinks);
  if (method == "opass" || method == "both")
    rc |= run_method(scenario, exp::Method::kOpass, cfg, tasks, compute, csv, table, sinks);
  if (method != "baseline" && method != "opass" && method != "both") {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 2;
  }
  if (!csv && table.rows() > 0) {
    std::printf("scenario=%s nodes=%u tasks=%u r=%u seed=%llu placement=%s\n\n",
                scenario.c_str(), cfg.nodes, tasks, cfg.replication,
                static_cast<unsigned long long>(cfg.seed),
                dfs::placement_kind_name(cfg.placement));
    std::fputs(table.render().c_str(), stdout);
  }
  if (sinks.hotspots && pool != nullptr)
    std::printf("\n%s", obs::pool_lane_report(*pool).c_str());

  if (!metrics_out.empty()) {
    const obs::IoStatus st = obs::write_metrics(registry, metrics_out);
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!trace_out.empty()) {
    const obs::IoStatus st = obs::write_file(trace_out, trace_builder.json());
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!timeline_out.empty()) {
    const obs::IoStatus st = obs::write_file(timeline_out, report_builder.timeline_json());
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!report_html.empty()) {
    const obs::IoStatus st = obs::write_file(report_html, report_builder.html());
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!spans_out.empty()) {
    const obs::IoStatus st = obs::write_file(spans_out, span_doc.spans_json());
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  if (!critical_path_out.empty()) {
    const bool json = critical_path_out.size() >= 5 &&
                      critical_path_out.rfind(".json") == critical_path_out.size() - 5;
    const obs::IoStatus st = obs::write_file(
        critical_path_out, json ? span_doc.critical_path_json() : span_doc.critical_path_text());
    if (!st.ok) {
      std::fprintf(stderr, "error: %s\n", st.message.c_str());
      rc |= 1;
    }
  }
  return rc;
}
