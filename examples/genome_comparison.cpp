// mpiBLAST-style gene comparison with dynamic task assignment (Sections
// II-B, IV-D and V-A3).
//
// A gene database is partitioned into chunk files stored in the DFS; the
// comparison time of each partition is irregular (heavy-tailed), so a master
// process assigns tasks to idle slaves at run time. The default master is
// locality-blind; the Opass master precomputes matching-based guideline
// lists and lets idle slaves steal the best co-located task from the longest
// remaining list.
//
// Usage: genome_comparison [nodes] [partitions] [mean_compute_seconds]
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "exp/experiment.hpp"

int main(int argc, char** argv) {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  cfg.seed = 1997;  // BLAST's birth year

  const std::uint32_t partitions =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 640;
  workload::GenomicsSpec spec;
  spec.mean_compute_time = argc > 3 ? std::atof(argv[3]) : 0.4;

  std::printf("Gene comparison: %u nodes, %u database partitions of 64 MiB, "
              "heavy-tailed compute (mean %.2f s)\n\n",
              cfg.nodes, partitions, spec.mean_compute_time);

  for (auto method : {exp::Method::kBaseline, exp::Method::kOpass}) {
    const auto out = exp::run_dynamic(cfg, partitions, method, spec);
    std::printf("%-16s  avg read %.2fs  p99 %.2fs  local %5.1f%%  makespan %.1fs\n",
                method == exp::Method::kBaseline ? "default master:" : "opass master:",
                out.io.mean, out.io.p99, 100 * out.local_fraction, out.makespan);
  }

  std::printf("\nThe Opass master keeps load balance (idle slaves always get work via\n"
              "stealing) while serving almost all reads locally; the default master\n"
              "balances load but forces ~%.0f%% of reads to be remote.\n",
              100.0 * (1.0 - 3.0 / cfg.nodes));
  return 0;
}
