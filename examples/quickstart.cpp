// Quickstart: the 60-second tour of the library.
//
// Stores a chunked dataset in the HDFS-model file system on a 64-node
// simulated cluster, then runs the same parallel read job twice — once with
// the rank-interval assignment applications like ParaView use, once with the
// Opass matching-based assignment — and prints the paper's headline metrics:
// locality, per-read I/O time, balance across storage nodes, and makespan.
#include <cstdio>

#include "exp/experiment.hpp"

int main() {
  using namespace opass;

  exp::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 42;

  const std::uint32_t chunks = 640;  // ~10 chunks per process, as in the paper

  std::printf("Opass quickstart: %u nodes, %u chunks of 64 MiB, 3-way replication\n\n",
              cfg.nodes, chunks);

  for (const auto method : {exp::Method::kBaseline, exp::Method::kOpass}) {
    const auto out = exp::run_single_data(cfg, chunks, method);
    std::printf("%-8s  local reads: %5.1f%%   avg I/O: %6.2fs  (min %.2f / max %.2f)\n",
                exp::method_name(method), 100.0 * out.local_fraction, out.io.mean,
                out.io.min, out.io.max);
    const auto served = summarize(out.served_mb);
    std::printf("          served per node (MiB): min %.0f / avg %.0f / max %.0f   "
                "makespan: %.1fs\n\n",
                served.min, served.mean, served.max, out.makespan);
  }
  std::printf("Expected shape (paper Figs. 7-8): Opass reads ~100%% locally, cuts the\n"
              "average I/O time to ~1/4 of the baseline and serves ~equal bytes per node.\n");
  return 0;
}
