// Analytic cluster planning with the Section III models.
//
// Answers, for a cluster you are about to deploy: how local will naive
// parallel reads be, and how unbalanced will the storage nodes get? This is
// the paper's motivation analysis turned into a planning tool.
//
// Usage: cluster_analysis [nodes] [chunks] [replication]
#include <cstdio>
#include <cstdlib>

#include "analysis/balance_model.hpp"
#include "analysis/locality_model.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace opass;

  const std::uint32_t m = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 128;
  const std::uint32_t n = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 512;
  const std::uint32_t r = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 3;

  std::printf("Cluster plan: m=%u nodes, n=%u chunks, r=%u replicas\n\n", m, n, r);

  const analysis::LocalityModel naive{m, r, n};  // random replica choice
  const analysis::LocalityModel best{m, r, n, analysis::LocalityMode::kCoLocated};
  std::printf("Per-node expected locally readable chunks (replica co-location): %.1f\n",
              best.expected_local_reads());
  std::printf("Expected locally served chunks under naive random replica choice: %.1f\n",
              naive.expected_local_reads());
  std::printf("P(a node serves more than 5 chunks locally, naive): %.2f%%\n\n",
              100 * naive.sf_local_reads(5));

  const analysis::BalanceModel bal{m, r, n};
  std::printf("Serve-count distribution under locality-blind parallel reads:\n");
  Table t({"k (chunks served)", "P(Z<=k)", "E[#nodes <=k]", "E[#nodes >k]"});
  for (std::uint64_t k = 0; k <= 2 * n / m + 8; k += (n / m > 4 ? n / (4 * m) : 1)) {
    t.add_row({Table::integer(static_cast<long long>(k)),
               Table::num(bal.cdf_chunks_served(k), 4),
               Table::num(bal.expected_nodes_serving_at_most(k), 1),
               Table::num(bal.expected_nodes_serving_more_than(k), 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nIdeal (balanced) load would be %.1f chunks per node. The tail above\n"
              "shows how many nodes will serve multiples of that — the contention\n"
              "Opass removes by matching processes to co-located data.\n",
              bal.expected_chunks_served());
  return 0;
}
